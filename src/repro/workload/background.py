"""Organic memory pressure: opening real background applications.

§4.3's organic experiments open eight top free apps before starting the
browser.  Each app is launched to the foreground (allocating its
footprint chunk by chunk through its own thread, with all the
direct-reclaim stalls that implies), then backgrounded: its oom_adj
drops into the cached range, most of its pages go cold, and a small
sync workload keeps a fraction hot.

Unlike the MP Simulator, these processes are killable — organic
pressure partially relieves itself through lmkd kills (Figure 15's kill
bursts).  But popular apps do not stay dead: their services restart
after a few seconds, re-allocating memory, which is what keeps a
device with more app demand than RAM *persistently* under pressure
while the video plays.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..device.device import Device
from ..kernel.memory import mb_to_pages
from ..kernel.process import MemProcess, OomAdj
from ..sched.scheduler import SchedClass, Thread
from ..sim.clock import Time, seconds
from ..sim.periodic import PeriodicService
from .apps import AppSpec, top_apps

#: Gap between consecutive app launches.
LAUNCH_SPACING: Time = seconds(1.5)
#: Background sync period per app.
SYNC_PERIOD: Time = seconds(2.0)
#: Footprint is allocated in chunks of this size (MB) during launch.
LAUNCH_CHUNK_MB = 16.0
#: Service-restart delay range after a kill (seconds).
RESTART_DELAY_RANGE_S = (4.0, 12.0)


class BackgroundWorkload:
    """Launches a set of apps and keeps them alive (restarting killed
    ones) in the background."""

    def __init__(self, device: Device, count: int = 8, restart: bool = True) -> None:
        self.device = device
        self.manager = device.memory
        self.specs: List[AppSpec] = top_apps(count)
        self.processes: List[MemProcess] = []
        self.restart = restart
        self.restarts = 0
        self._launched = 0
        self._stopped = False
        self._on_settled: Optional[Callable[[], None]] = None
        self._rng = device.sim.random.stream("workload.background")

    def launch_all(self, on_settled: Optional[Callable[[], None]] = None) -> None:
        """Open each app in sequence; ``on_settled`` fires once the last
        app has been launched and backgrounded."""
        self._on_settled = on_settled
        self._launch_next()

    def stop(self) -> None:
        """Stop restarting killed apps (experiment teardown)."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _launch_next(self) -> None:
        if self._launched >= len(self.specs):
            if self._on_settled is not None:
                self._on_settled()
            return
        spec = self.specs[self._launched]
        recency = len(self.specs) - self._launched
        self._launched += 1

        def launched() -> None:
            self.device.sim.schedule(
                LAUNCH_SPACING, self._launch_next, label="bg:launch"
            )

        self._start_app(spec, recency, on_running=launched)

    def _start_app(
        self,
        spec: AppSpec,
        recency: int,
        on_running: Optional[Callable[[], None]] = None,
        restarted: bool = False,
    ) -> None:
        suffix = f".r{self.restarts}" if restarted else ""
        process = self.manager.spawn_process(
            spec.name + suffix, OomAdj.FOREGROUND, dirty_fraction=0.12
        )
        thread = self.manager.spawn_thread(
            process, f"{spec.name}{suffix}.main", SchedClass.FOREGROUND
        )
        self.processes.append(process)
        remaining = mb_to_pages(spec.pss_mb)
        chunk = mb_to_pages(LAUNCH_CHUNK_MB)

        def allocate(left: int) -> None:
            if not process.alive:
                return
            if left <= 0:
                backgrounded()
                return
            take = min(chunk, left)
            self.manager.request_pages(
                process,
                thread,
                take,
                kind="anon",
                hot_fraction=spec.background_hot_fraction,
                on_granted=lambda: allocate(left - take),
            )

        def backgrounded() -> None:
            # App loses focus: demote into the cached LRU range, most
            # recently used = lowest adj.
            process.oom_adj = min(
                OomAdj.CACHED_MAX, OomAdj.CACHED_MIN + recency * 10
            )
            self._start_sync_loop(process, thread)
            if self.restart:
                process.on_kill.append(
                    lambda _reason: self._schedule_restart(spec, recency)
                )
            if on_running is not None:
                on_running()

        allocate(remaining)

    def _schedule_restart(self, spec: AppSpec, recency: int) -> None:
        """Popular apps' services restart shortly after a kill."""
        if self._stopped:
            return
        lo, hi = RESTART_DELAY_RANGE_S
        delay = seconds(self._rng.uniform(lo, hi))

        def restart() -> None:
            if self._stopped:
                return
            self.restarts += 1
            self._start_app(spec, recency, restarted=True)

        self.device.sim.schedule(delay, restart, label="bg:restart")

    def _start_sync_loop(self, process: MemProcess, thread: Thread) -> None:
        """Periodic light activity: push notifications, sync jobs."""
        def tick() -> None:
            if not process.alive or self._stopped:
                service.stop()
                return
            hot = process.pools.hot_total
            if hot > 0:
                self.manager.touch(process, thread, max(1, hot // 20))

        service = PeriodicService(
            self.device.sim, SYNC_PERIOD, tick, label="bg:sync"
        )
        service.fire()

    # ------------------------------------------------------------------
    @property
    def alive_count(self) -> int:
        return sum(1 for p in self.processes if p.alive)

    @property
    def killed_count(self) -> int:
        return len(self.processes) - self.alive_count
