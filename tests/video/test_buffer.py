"""Unit tests for the playback buffer."""

import pytest

from repro.video.buffer import PlaybackBuffer
from repro.video.dash import Segment


def seg(index, duration=4.0, size=1000):
    return Segment(index, duration, size)


def test_push_pop_fifo():
    buffer = PlaybackBuffer(60.0)
    buffer.push(seg(0), "480p@30")
    buffer.push(seg(1), "480p@30")
    first, rep = buffer.pop()
    assert first.index == 0 and rep == "480p@30"


def test_levels_track_contents():
    buffer = PlaybackBuffer(60.0)
    buffer.push(seg(0, 4.0, 500), "a")
    buffer.push(seg(1, 4.0, 700), "a")
    assert buffer.level_s == 8.0
    assert buffer.level_bytes == 1200
    buffer.pop()
    assert buffer.level_s == 4.0
    assert buffer.level_bytes == 700


def test_has_room_respects_capacity():
    buffer = PlaybackBuffer(8.0)
    buffer.push(seg(0), "a")
    assert buffer.has_room
    buffer.push(seg(1), "a")
    assert not buffer.has_room


def test_pop_empty_returns_none():
    buffer = PlaybackBuffer(10.0)
    assert buffer.pop() is None
    assert buffer.peek_representation() is None


def test_levels_zeroed_at_empty():
    buffer = PlaybackBuffer(10.0)
    buffer.push(seg(0, 3.999999), "a")
    buffer.pop()
    assert buffer.level_s == 0.0
    assert buffer.level_bytes == 0


def test_flush_returns_bytes():
    buffer = PlaybackBuffer(60.0)
    buffer.push(seg(0, 4.0, 800), "a")
    buffer.push(seg(1, 4.0, 900), "a")
    assert buffer.flush() == 1700
    assert len(buffer) == 0
    assert buffer.level_s == 0.0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        PlaybackBuffer(0)
