"""Batch-kernel vs per-device-oracle equivalence.

The cohort engine's contract is *bitwise* agreement with the v1
per-device path (`generator._debounce`, `generator._emit_signals`, the
scalar AR(1) walk): each kernel is checked against its scalar oracle on
random inputs, then the full pipeline is checked end to end — the
columnar logs of ``simulate_cohort`` must equal the logs produced by
``reference_cohort_logs`` (which replays v1's exact per-device code on
the same named streams).
"""

import numpy as np
import pytest
from scipy.signal import lfilter

from repro.study.cohort import (
    FleetConfig,
    ar1_batch,
    cohort_size,
    columns_to_logs,
    debounce_flat,
    n_cohorts,
    reference_cohort_logs,
    reference_fleet_logs,
    signal_counts_from_runs,
    simulate_cohort,
)
from repro.study.generator import _debounce, _emit_signals

CFG = FleetConfig(n_devices=12, hours_scale=0.02, seed=7, cohort_size=5)


def _random_states(rng, n_devices, max_len):
    """Concatenated random int8 state series with bursty runs."""
    series = []
    for _ in range(n_devices):
        n = int(rng.integers(1, max_len))
        runs = []
        while sum(len(r) for r in runs) < n:
            runs.append(
                np.full(int(rng.integers(1, 15)), rng.integers(0, 4))
            )
        series.append(np.concatenate(runs)[:n].astype(np.int8))
    offsets = np.concatenate(
        ([0], np.cumsum([len(s) for s in series]))
    ).astype(np.int64)
    return np.concatenate(series), offsets, series


# ----------------------------------------------------------------------
# Kernel vs oracle on random inputs
# ----------------------------------------------------------------------

def test_ar1_batch_matches_scalar_lfilter_rows():
    rng = np.random.default_rng(11)
    noise = rng.normal(0.0, 1.0, size=(7, 500))
    coeff = 1.0 - 1.0 / 420.0
    batched = ar1_batch(noise, coeff)
    for row in range(noise.shape[0]):
        expected = lfilter([1.0], [1.0, -coeff], noise[row])
        assert np.array_equal(batched[row], expected)


def test_ar1_batch_preserves_float32():
    noise = np.random.default_rng(0).random((3, 64)).astype(np.float32)
    assert ar1_batch(noise, 0.9).dtype == np.float32


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_debounce_flat_matches_v1_debounce(seed):
    rng = np.random.default_rng(seed)
    flat, offsets, series = _random_states(rng, 9, 400)
    debounced, _runs = debounce_flat(flat, offsets, min_dwell_s=6)
    expected = np.concatenate(
        [_debounce(s.copy(), min_dwell_s=6) for s in series]
    )
    assert np.array_equal(debounced, expected)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_signal_counts_match_v1_emit_signals(seed):
    rng = np.random.default_rng(seed)
    flat, offsets, series = _random_states(rng, 9, 400)
    debounced, runs = debounce_flat(flat, offsets, min_dwell_s=6)
    counts, _entry, _reemit = signal_counts_from_runs(runs, len(series))
    for dev, s in enumerate(series):
        signals = _emit_signals(
            _debounce(s.copy(), min_dwell_s=6)
        )
        expected = np.zeros(4, dtype=np.int64)
        for _t, code in signals:
            expected[code] += 1
        assert np.array_equal(counts[dev], expected), f"device {dev}"


def test_debounce_keeps_first_short_run():
    # v1 keeps a device's first run even when it is shorter than the
    # dwell floor (start > 0 guard); the batch kernel must too.
    flat = np.array([2, 2, 0, 0, 0, 0, 0, 0], dtype=np.int8)
    offsets = np.array([0, 8], dtype=np.int64)
    debounced, _ = debounce_flat(flat, offsets, min_dwell_s=6)
    assert np.array_equal(debounced, _debounce(flat.copy(), min_dwell_s=6))
    assert debounced[0] == 2  # first run survived


# ----------------------------------------------------------------------
# Full pipeline vs the per-device reference oracle
# ----------------------------------------------------------------------

def test_cohort_columns_bitwise_equal_reference_logs():
    for cohort in range(n_cohorts(CFG)):
        result = simulate_cohort(cohort, CFG, collect_columns=True)
        batch_logs = columns_to_logs(result.columns)
        oracle_logs = reference_cohort_logs(cohort, CFG)
        assert len(batch_logs) == len(oracle_logs)
        for got, want in zip(batch_logs, oracle_logs):
            assert got.info == want.info
            assert np.array_equal(got.timestamps, want.timestamps)
            assert np.array_equal(got.available_mb, want.available_mb)
            assert np.array_equal(got.state, want.state)
            assert np.array_equal(got.interactive, want.interactive)
            assert np.array_equal(got.n_services, want.n_services)
            assert got.signals == want.signals


def test_simulate_cohort_deterministic():
    a = simulate_cohort(0, CFG)
    b = simulate_cohort(0, CFG)
    assert a.summary == b.summary


def test_collect_columns_does_not_perturb_summary():
    # Service counts are drawn only in collect mode, on their own named
    # stream — the summary must not change.
    assert (
        simulate_cohort(0, CFG).summary
        == simulate_cohort(0, CFG, collect_columns=True).summary
    )


def test_cohort_size_auto_bounds():
    assert 4 <= cohort_size(FleetConfig(n_devices=10**6)) <= 1024
    explicit = FleetConfig(n_devices=100, cohort_size=7)
    assert cohort_size(explicit) == 7
    assert n_cohorts(explicit) == 15


def test_reference_fleet_logs_covers_all_devices():
    logs = reference_fleet_logs(CFG)
    assert len(logs) == CFG.n_devices
    assert [log.info.device_id for log in logs] == [
        f"user{i:03d}" for i in range(CFG.n_devices)
    ]
