"""The video client: fetch loop, memory footprint, playback, crashes.

A :class:`VideoPlayer` is one client app (Firefox / Chrome / ExoPlayer
profile) streaming one DASH asset on one simulated device:

* it **allocates real simulated memory** — platform base footprint,
  decoded-frame pool, compositor textures, the playback buffer's bytes,
  and steady allocation churn — which is how streaming itself applies
  memory pressure (Figure 8's PSS growth with resolution and fps);
* its threads (main, MediaCodec, SurfaceFlinger) contend with kswapd
  and mmcqd under pressure, producing frame drops (§5);
* lmkd or the OOM killer can kill it — the client crash of Tables 2/3.

The player exposes ``set_representation`` for §6-style adaptation and
accepts an optional ABR controller consulted before each fetch and on
every OnTrimMemory signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..device.device import Device
from ..kernel.pressure import MemoryPressureLevel
from ..sched.scheduler import SchedClass
from ..sim.clock import Time, millis, seconds, to_seconds
from ..sim.periodic import PeriodicService
from .buffer import DEFAULT_CAPACITY_S, PlaybackBuffer
from .clients import ClientProfile, firefox
from .dash import Manifest, Representation
from .encoding import VideoAsset
from .network import lan_link
from .pipeline import RenderPipeline
from .server import VideoServer

#: Playback begins once this much media is buffered (or all of it).
START_BUFFER_S = 4.0
#: Period of the allocation-churn and PSS-sampling loops.
CHURN_PERIOD = millis(500)
PSS_SAMPLE_PERIOD = millis(250)


def bytes_to_pages(size_bytes: int) -> int:
    return max(1, math.ceil(size_bytes / 4096))


@dataclass
class SessionResult:
    """Everything measured from one streaming session."""

    device_name: str
    client_name: str
    resolution: str
    fps: int
    genre: str
    duration_s: float
    frames_processed: int = 0
    frames_rendered: int = 0
    frames_dropped: int = 0
    dropped_decode_late: int = 0
    dropped_render_late: int = 0
    dropped_skipped: int = 0
    drop_rate: float = 0.0
    crashed: bool = False
    crash_reason: str = ""
    crash_time_s: Optional[float] = None
    rebuffer_s: float = 0.0
    #: Device-wide kill counts over the session (any victim process).
    lmkd_kills: int = 0
    oom_kills: int = 0
    #: Wall-clock span of the session, launch to finalize (seconds).
    wall_span_s: float = 0.0
    pss_series: List[Tuple[float, float]] = field(default_factory=list)
    fps_series: List[float] = field(default_factory=list)
    signals: List[Tuple[float, MemoryPressureLevel]] = field(default_factory=list)
    switch_log: List[Tuple[float, str, int]] = field(default_factory=list)
    #: Ladder bitrate of each segment as it started playing.
    played_bitrates_kbps: List[int] = field(default_factory=list)

    @property
    def pss_mean_mb(self) -> float:
        if not self.pss_series:
            return 0.0
        return sum(v for _, v in self.pss_series) / len(self.pss_series)

    @property
    def pss_max_mb(self) -> float:
        return max((v for _, v in self.pss_series), default=0.0)

    @property
    def pss_min_mb(self) -> float:
        return min((v for _, v in self.pss_series), default=0.0)

    @property
    def mean_rendered_fps(self) -> float:
        """Mean of the per-second rendered-FPS bins.

        Defined behavior at the edges: a session that never rendered a
        frame (e.g. killed at Critical pressure before reaching steady
        state) has an empty ``fps_series`` and reports exactly 0.0 —
        never a ZeroDivisionError, never a stale value from a previous
        representation.
        """
        if not self.fps_series:
            return 0.0
        return sum(self.fps_series) / len(self.fps_series)

    @property
    def effective_drop_rate(self) -> float:
        """Drop rate over the frames *scheduled* for the full session:
        a crash makes every unplayed frame a dropped frame (this is the
        quantity behind the paper's ~100% bars at Critical, where runs
        were 'either unplayable or the video client crashed').

        Defined behavior at the edges: zero rendered frames always
        yields 1.0 for any session with a positive frame schedule —
        including the degenerate case where ``duration_s * fps`` rounds
        to zero but the session still crashed or processed frames, which
        previously reported a perfect 0.0.  A genuinely empty schedule
        (no duration, nothing processed, no crash) is 0.0.
        """
        due = round(self.duration_s * self.fps)
        if due <= 0:
            # Degenerate schedule: fall back on what actually happened
            # rather than declaring a flawless session.
            if self.crashed or self.frames_processed > 0:
                if self.frames_rendered == 0:
                    return 1.0
                return self.drop_rate
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.frames_rendered / due))


class VideoPlayer:
    """One streaming client session on a device."""

    def __init__(
        self,
        device: Device,
        asset: VideoAsset,
        resolution: str,
        fps: int,
        client: Optional[ClientProfile] = None,
        link=None,
        buffer_capacity_s: float = DEFAULT_CAPACITY_S,
        abr=None,
    ) -> None:
        self.device = device
        self.sim = device.sim
        self.manager = device.memory
        self.asset = asset
        self.client = client or firefox()
        self.manifest = Manifest(asset, self.sim.random)
        self.server = VideoServer(self.sim, self.manifest, link or lan_link())
        self.buffer = PlaybackBuffer(buffer_capacity_s)
        self.abr = abr

        self.process = self.manager.spawn_process(
            self.client.name, self.client.oom_adj, dirty_fraction=0.30
        )
        self.main_thread = self.manager.spawn_thread(
            self.process, f"{self.client.name}.main", SchedClass.FOREGROUND
        )
        self.decoder_thread = self.manager.spawn_thread(
            self.process, "MediaCodec", SchedClass.FOREGROUND
        )
        self.renderer_thread = self.manager.spawn_thread(
            self.process, "SurfaceFlinger", SchedClass.FOREGROUND
        )
        self.worker_threads = [
            self.manager.spawn_thread(
                self.process, f"{self.client.name}.worker{i}", SchedClass.FOREGROUND
            )
            for i in range(self.client.n_worker_threads)
        ]

        self.current_rep: Representation = self.manifest.representation(resolution, fps)
        self._reps: Dict[str, Representation] = {
            rep.id: rep for rep in self.manifest.representations
        }
        self.pipeline = RenderPipeline(
            self.sim,
            self.manager,
            self.process,
            self.decoder_thread,
            self.renderer_thread,
            self.client,
            asset.genre,
            device.profile.decode_cost_multiplier,
            next_segment=self._next_segment,
            on_finished=self._session_finished,
        )

        self.result = SessionResult(
            device_name=device.profile.name,
            client_name=self.client.name,
            resolution=resolution,
            fps=fps,
            genre=asset.genre.name,
            duration_s=asset.duration_s,
        )

        self._started = False
        self._done = False
        self._fetch_index = 0
        self._play_index = 0
        self._fetch_inflight = False
        self._playing_pages = 0
        self._codec_pages = 0
        self._texture_pages = 0
        self._churn_pages = 0
        self._churn_phase = False
        self._playback_started = False
        self._start_time: Time = 0
        #: (time_s, Mbps) measured per completed segment download.
        self.throughput_history: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the client: allocate its footprint, begin fetching."""
        if self._started:
            return
        self._started = True
        self._start_time = self.sim.now
        self.process.on_kill.append(self._on_kill)
        self.manager.monitor.subscribe(self._on_pressure_signal)
        base = self.client.base_pages
        file_pages = round(base * self.client.file_share)
        anon_pages = base - file_pages
        quarter = anon_pages // 4
        chunks = [("file", file_pages)] + [("anon", quarter)] * 3 + [
            ("anon", anon_pages - 3 * quarter)
        ]

        def allocate_chunks(remaining: List[tuple]) -> None:
            if not remaining or not self.process.alive:
                if self.process.alive:
                    self._allocate_codec_buffers(self._after_startup)
                return
            (kind, pages), *rest = remaining
            self.manager.request_pages(
                self.process,
                self.main_thread,
                pages,
                kind=kind,
                hot_fraction=0.5,
                on_granted=lambda: allocate_chunks(rest),
            )

        allocate_chunks(chunks)

    def _after_startup(self) -> None:
        if not self.process.alive:
            return
        self._pss_service = PeriodicService(
            self.sim, PSS_SAMPLE_PERIOD, self._sample_pss, label="pss"
        )
        self._pss_service.fire()
        self._churn_tick()
        self._start_duty_loops()
        self._fetch_next()

    def _start_duty_loops(self) -> None:
        """Sustain the auxiliary CPU load of a real client: IPC, demuxing,
        JS, layout — dozens of threads whose queueing delays are what
        §5 measures as Runnable time."""
        rng = self.sim.random.stream("client.duty")
        period = millis(20)

        def start_loop(thread, duty) -> None:
            def tick() -> None:
                if self._done or not self.process.alive:
                    service.stop()
                    return
                burst = period * duty * rng.lognormvariate(0.0, 0.25)
                if burst >= 1.0:
                    thread.post(burst, label="duty")

            service = PeriodicService(self.sim, period, tick, label="duty")
            service.fire()  # the first burst lands inline

        start_loop(self.main_thread, self.client.main_thread_duty)
        for thread in self.worker_threads:
            start_loop(thread, self.client.worker_duty)

    def _allocate_codec_buffers(self, then) -> None:
        """(Re)allocate the decoded-frame pool and textures for the
        current representation, releasing any previous allocation."""
        rep = self.current_rep
        new_codec = self.client.codec_buffer_pages(rep.resolution, rep.fps)
        new_texture = self.client.texture_pages(rep.resolution)
        release = self._codec_pages + self._texture_pages
        if release > 0:
            self.manager.release_pages(self.process, release, kind="anon")
        self._codec_pages = new_codec
        self._texture_pages = new_texture
        self.manager.request_pages(
            self.process,
            self.decoder_thread,
            new_codec + new_texture,
            kind="anon",
            hot_fraction=1.0,  # codec buffers are touched every frame
            on_granted=then,
        )

    # ------------------------------------------------------------------
    # Fetch loop
    # ------------------------------------------------------------------
    def _fetch_next(self) -> None:
        if self._done or not self.process.alive or self._fetch_inflight:
            return
        if self._fetch_index >= self.manifest.segment_count:
            return
        if not self.buffer.has_room:
            self.sim.schedule(millis(250), self._fetch_next, label="fetch:wait")
            return
        if self.abr is not None:
            choice = self.abr.choose_representation(self)
            if choice is not None and choice.id != self.current_rep.id:
                self.set_representation(choice.resolution, choice.fps)
        rep = self.current_rep
        index = self._fetch_index
        self._fetch_inflight = True
        started = self.sim.now
        self.server.request_segment(
            rep, index, lambda seg: self._on_segment(seg, rep, started)
        )

    def _on_segment(self, segment, rep: Representation, started: Time) -> None:
        self._fetch_inflight = False
        if self._done or not self.process.alive:
            return
        elapsed_s = max(1e-9, to_seconds(self.sim.now - started))
        self.throughput_history.append(
            (to_seconds(self.sim.now), segment.size_bytes * 8 / elapsed_s / 1e6)
        )
        pages = bytes_to_pages(segment.size_bytes)
        # Segments land in the browser's media source buffer, which is
        # file-backed (media cache): under pressure these pages are
        # written back and refault from disk through mmcqd.
        self.manager.request_pages(
            self.process,
            self.main_thread,
            pages,
            kind="file",
            hot_fraction=0.85,
            on_granted=lambda: self._segment_ready(segment, rep),
        )

    def _segment_ready(self, segment, rep: Representation) -> None:
        if self._done or not self.process.alive:
            return
        self.buffer.push(segment, rep.id)
        self._fetch_index += 1
        self.pipeline.feed()
        self._maybe_start_playback()
        self._fetch_next()

    def _maybe_start_playback(self) -> None:
        if self._playback_started:
            return
        enough = self.buffer.level_s >= min(START_BUFFER_S, self.asset.duration_s)
        all_fetched = self._fetch_index >= self.manifest.segment_count
        if enough or all_fetched:
            self._playback_started = True
            self.pipeline.start()

    # ------------------------------------------------------------------
    # Pipeline callbacks
    # ------------------------------------------------------------------
    def _next_segment(self):
        item = self.buffer.pop()
        if item is None:
            if self._fetch_index >= self.manifest.segment_count:
                self.sim.schedule(0, self.pipeline.finish, label="session:drain")
            return None
        # The previous segment has fully played: release its memory.
        if self._playing_pages > 0:
            self.manager.release_pages(self.process, self._playing_pages, "file")
        segment, rep_id = item
        rep = self._reps[rep_id]
        self._playing_pages = bytes_to_pages(segment.size_bytes)
        self._play_index += 1
        self.result.played_bitrates_kbps.append(rep.bitrate_kbps)
        return segment, rep.resolution, rep.fps

    def _session_finished(self) -> None:
        self._finalize()

    def _on_kill(self, reason: str) -> None:
        self.result.crashed = True
        self.result.crash_reason = reason
        self.result.crash_time_s = to_seconds(self.sim.now - self._start_time)
        self.pipeline.stop()
        self._finalize()

    def _finalize(self) -> None:
        if self._done:
            return
        self._done = True
        self.result.wall_span_s = to_seconds(self.sim.now - self._start_time)
        stats = self.pipeline.stats
        self.result.frames_processed = stats.frames_processed
        self.result.frames_rendered = stats.frames_rendered
        self.result.frames_dropped = stats.frames_dropped
        self.result.dropped_decode_late = stats.dropped_decode_late
        self.result.dropped_render_late = stats.dropped_render_late
        self.result.dropped_skipped = stats.dropped_skipped
        self.result.drop_rate = stats.drop_rate
        self.result.rebuffer_s = to_seconds(stats.rebuffer_ticks)
        self.result.fps_series = stats.rendered_fps_series(
            start_s=to_seconds(self._start_time)
        )
        self.result.lmkd_kills = self.manager.vmstat.lmkd_kills
        self.result.oom_kills = self.manager.vmstat.oom_kills
        self.sim.emit("session.end", player=self)

    @property
    def finished(self) -> bool:
        return self._done

    @property
    def buffer_level_s(self) -> float:
        return self.buffer.level_s

    def estimated_throughput_mbps(self) -> float:
        """EWMA of recent segment download throughput (0 if no samples)."""
        if not self.throughput_history:
            return 0.0
        estimate = self.throughput_history[0][1]
        for _, mbps in self.throughput_history[1:]:
            estimate = 0.7 * estimate + 0.3 * mbps
        return estimate

    # ------------------------------------------------------------------
    # Adaptation API (§6)
    # ------------------------------------------------------------------
    def set_representation(
        self, resolution: str, fps: int, flush: bool = False
    ) -> None:
        """Switch future fetches to (resolution, fps); optionally flush
        the buffer so the switch takes effect at the playhead."""
        new_rep = self.manifest.representation(resolution, fps)
        if new_rep.id == self.current_rep.id:
            return
        self.current_rep = new_rep
        self.result.switch_log.append(
            (to_seconds(self.sim.now - self._start_time), resolution, fps)
        )
        if flush:
            released_bytes = self.buffer.flush()
            if released_bytes > 0:
                self.manager.release_pages(
                    self.process, bytes_to_pages(released_bytes), "file"
                )
            self._fetch_index = self._play_index
            self._fetch_next()
        if self.process.alive:
            self._allocate_codec_buffers(lambda: None)

    # ------------------------------------------------------------------
    # Background loops
    # ------------------------------------------------------------------
    def _on_pressure_signal(self, level: MemoryPressureLevel, time: Time) -> None:
        if self._done:
            return
        self.result.signals.append((to_seconds(time - self._start_time), level))
        if self.abr is not None:
            self.abr.on_pressure_signal(self, level)

    def _churn_tick(self) -> None:
        """Steady allocate/release churn from JS heap and codec recycling."""
        if self._done or not self.process.alive:
            return
        churn = bytes_to_pages(
            round(self.client.churn_mb_per_s * 1024 * 1024 / 2)
        )
        if self._churn_phase:
            released = min(self._churn_pages, churn)
            if released > 0:
                self.manager.release_pages(self.process, released, "anon")
                self._churn_pages -= released
            self._churn_phase = False
            # Not a fixed-period loop: the allocate phase below re-arms
            # only once its page request is granted, so churn slows down
            # under memory pressure.
            self.sim.schedule(  # repro: noqa[REP108]
                CHURN_PERIOD, self._churn_tick, label="churn"
            )
        else:
            def granted() -> None:
                self._churn_pages += churn
                self._churn_phase = True
                self.sim.schedule(CHURN_PERIOD, self._churn_tick, label="churn")

            self.manager.request_pages(
                self.process, self.main_thread, churn,
                kind="anon", hot_fraction=0.8, on_granted=granted,
            )

    def _sample_pss(self) -> None:
        if self._done or not self.process.alive:
            self._pss_service.stop()
            return
        self.result.pss_series.append(
            (to_seconds(self.sim.now - self._start_time), self.process.pss_mb)
        )
