"""Perfetto-analog tracing: recording and §5-style analysis queries."""

from .analysis import (
    PreemptionStats,
    cpu_utilization_series,
    migration_counts,
    preemption_stats,
    state_breakdown,
    state_times,
    top_running_threads,
)
from .recorder import TraceRecorder

__all__ = [
    "PreemptionStats",
    "cpu_utilization_series",
    "migration_counts",
    "preemption_stats",
    "state_breakdown",
    "state_times",
    "top_running_threads",
    "TraceRecorder",
]
