"""Simulated-time representation and conversions.

All simulator timestamps are integers counting **microseconds** since the
start of the simulation.  Integer time keeps event ordering exact and
reproducible: two events scheduled for the same instant never reorder due
to floating-point rounding, and snapshots written by one run replay
bit-identically in another.

The helpers here convert between human units and ticks.  Library code
should accept seconds/milliseconds at its public boundary and convert to
ticks immediately.
"""

from __future__ import annotations

#: Type alias used throughout the simulator for timestamps and durations.
Time = int

#: Number of ticks per second (ticks are microseconds).
TICKS_PER_SECOND: Time = 1_000_000

#: Number of ticks per millisecond.
TICKS_PER_MS: Time = 1_000


def seconds(value: float) -> Time:
    """Convert a duration in seconds to ticks (rounded to nearest tick)."""
    return round(value * TICKS_PER_SECOND)


def millis(value: float) -> Time:
    """Convert a duration in milliseconds to ticks."""
    return round(value * TICKS_PER_MS)


def micros(value: float) -> Time:
    """Convert a duration in microseconds to ticks (identity for ints)."""
    return round(value)


def to_seconds(ticks: Time) -> float:
    """Convert ticks back to (float) seconds, for reporting."""
    return ticks / TICKS_PER_SECOND


def to_millis(ticks: Time) -> float:
    """Convert ticks back to (float) milliseconds, for reporting."""
    return ticks / TICKS_PER_MS
