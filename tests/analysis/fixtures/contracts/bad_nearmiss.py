"""REP202 fixture: an emit topic one typo away from a subscription."""


def attach(bus) -> None:
    bus.on("sched.wakeup", handle)


def run(bus) -> None:
    bus.emit("sched.wakeup", thread="t0")   # correct site
    bus.emit("sched.wakeupp", thread="t1")  # the typo


def handle(time, **payload) -> None:
    pass
