"""The production lint driver: cache, parallel fan-out, baseline merge.

The contract under test: however a run is executed — serial, ``--jobs
N``, cold cache, warm cache — the JSON report is byte-identical, and a
warm cache re-analyzes zero unchanged files.
"""

import json
from pathlib import Path

from repro.analysis.baseline import (
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.cli import main, run_lint
from repro.analysis.engine import Finding
from repro.analysis.reporters import render_json, render_sarif

FIXTURES = Path(__file__).parent / "fixtures"
TARGET = FIXTURES / "repro"


def lint(**kwargs):
    return run_lint([TARGET], root=FIXTURES, use_baseline=False, **kwargs)


def report_bytes(result):
    return json.dumps(render_json(result), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Parallel fan-out
# ----------------------------------------------------------------------
def test_parallel_report_is_byte_identical_to_serial():
    serial = lint(jobs=1)
    parallel = lint(jobs=4)
    assert report_bytes(serial) == report_bytes(parallel)
    assert serial.findings  # the fixture tree is not trivially empty


# ----------------------------------------------------------------------
# Content-addressed cache
# ----------------------------------------------------------------------
def test_warm_cache_reanalyzes_zero_files(tmp_path):
    cache_dir = tmp_path / "cache"
    uncached = lint()
    cold = lint(cache_dir=cache_dir)
    warm = lint(cache_dir=cache_dir)
    assert cold.files_analyzed == cold.files_checked
    assert cold.files_cached == 0
    assert warm.files_analyzed == 0
    assert warm.files_cached == warm.files_checked
    # Cache state is reported in the summary but must never change the
    # findings themselves.
    for result in (cold, warm):
        assert result.findings == uncached.findings
        assert result.suppressed == uncached.suppressed


def test_edited_file_is_reanalyzed(tmp_path):
    cache_dir = tmp_path / "cache"
    tree = tmp_path / "repro" / "kernel"
    tree.mkdir(parents=True)
    target = tree / "mod.py"
    target.write_text("import time\n\ndef f():\n    return time.time()\n")

    first = run_lint([tmp_path], root=tmp_path, use_baseline=False,
                     cache_dir=cache_dir)
    assert first.files_analyzed == 1 and [f.rule for f in first.findings] == ["REP101"]

    warm = run_lint([tmp_path], root=tmp_path, use_baseline=False,
                    cache_dir=cache_dir)
    assert warm.files_analyzed == 0 and warm.files_cached == 1

    target.write_text("def f():\n    return 0\n")
    edited = run_lint([tmp_path], root=tmp_path, use_baseline=False,
                      cache_dir=cache_dir)
    assert edited.files_analyzed == 1
    assert edited.findings == []


def test_cache_is_keyed_on_rule_set(tmp_path):
    cache_dir = tmp_path / "cache"
    lint(cache_dir=cache_dir, only_rules=["REP101"])
    full = lint(cache_dir=cache_dir)
    # A --rules subset must not serve records to the full run.
    assert full.files_cached == 0


def test_corrupt_cache_entry_degrades_to_miss(tmp_path):
    cache_dir = tmp_path / "cache"
    first = lint(cache_dir=cache_dir)
    for entry in cache_dir.glob("*.json"):
        entry.write_text("{not json")
    again = lint(cache_dir=cache_dir)
    assert again.files_cached == 0
    assert again.findings == first.findings


# ----------------------------------------------------------------------
# Baseline merge / prune
# ----------------------------------------------------------------------
def _finding(path, message, rule="REP102"):
    return Finding(rule=rule, severity="error", path=path, line=1, col=1,
                   message=message)


def test_update_baseline_keeps_entries_outside_lint_scope(tmp_path):
    baseline = tmp_path / "baseline.json"
    (tmp_path / "other").mkdir()
    (tmp_path / "other" / "mod.py").write_text("x = 1\n")
    outside = _finding("other/mod.py", "grandfathered elsewhere")
    write_baseline([outside], baseline)

    current = _finding("linted/mod.py", "fresh debt")
    update = update_baseline(
        [current], baseline, linted_rels={"linted/mod.py"}, root=tmp_path,
    )
    allowed = load_baseline(baseline)
    assert allowed[outside.fingerprint] == 1  # survived a partial lint
    assert allowed[current.fingerprint] == 1
    assert update.kept_outside == 1
    assert not update.shrank


def test_update_baseline_prunes_deleted_files(tmp_path):
    baseline = tmp_path / "baseline.json"
    dead = _finding("gone/mod.py", "debt for deleted code")
    write_baseline([dead], baseline)

    update = update_baseline([], baseline, linted_rels=set(), root=tmp_path)
    assert update.pruned == ["gone/mod.py"]
    assert update.shrank
    assert load_baseline(baseline) == {}


def test_update_baseline_replaces_linted_entries(tmp_path):
    baseline = tmp_path / "baseline.json"
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    old = _finding("pkg/mod.py", "fixed since")
    write_baseline([old], baseline)

    update = update_baseline(
        [], baseline, linted_rels={"pkg/mod.py"}, root=tmp_path,
    )
    assert load_baseline(baseline) == {}
    assert update.old_total == 1 and update.new_total == 0
    assert update.shrank
    assert update.pruned == []  # the file exists; its debt was paid


def test_update_baseline_cli_warns_on_shrink_and_prunes(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    tree = tmp_path / "repro" / "kernel"
    tree.mkdir(parents=True)
    doomed = tree / "doomed.py"
    doomed.write_text("import time\n\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    common = ["--baseline", str(baseline), "--no-cache"]
    assert main(["repro", *common, "--update-baseline"]) == 0
    assert load_baseline(baseline)  # the wall-clock debt is recorded
    capsys.readouterr()

    # The file (and its debt) is deleted: the next update must prune
    # its fingerprints and call out that the baseline shrank.
    doomed.unlink()
    assert main(["repro", *common, "--update-baseline"]) == 0
    err = capsys.readouterr().err
    assert "pruned" in err and "doomed.py" in err
    assert "shrank" in err
    assert load_baseline(baseline) == {}


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_report_shape():
    result = lint()
    sarif = render_sarif(result)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "REP001" in rule_ids
    assert {r["ruleId"] for r in run["results"]} <= rule_ids
    assert len(run["results"]) == len(result.findings) + len(result.baselined)
    for entry in run["results"]:
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert entry["partialFingerprints"]["reproLintFingerprint/v1"]
    json.dumps(sarif)  # must be serializable as-is


def test_sarif_cli_writes_file(tmp_path, monkeypatch):
    monkeypatch.chdir(FIXTURES)
    out = tmp_path / "lint.sarif"
    assert main([
        "repro/kernel/bad_random.py", "--no-baseline", "--no-cache",
        "--sarif", str(out),
    ]) == 1
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    assert any(
        r["ruleId"] == "REP102" for r in doc["runs"][0]["results"]
    )
