#!/usr/bin/env python3
"""ABR algorithms under a *joint* network + memory bottleneck.

Classic ABR adapts to the network only.  This example streams over a
variable-throughput trace (a commute-style 1-8 Mbps WiFi/LTE mix) on an
entry-level phone under Moderate memory pressure, comparing:

* rate-based ABR (throughput rule),
* buffer-based ABR (BBA),
* BOLA,
* each of the above wrapped in :class:`MemoryAwareAbr`.

Network-only controllers pick rungs the *network* can carry but the
*device* cannot decode or hold in memory; the memory-aware wrapper caps
the frame rate and resolution on OnTrimMemory signals and keeps the
session alive.

Usage::

    python examples/abr_comparison.py
"""

from repro.core.abr import BolaAbr, BufferBasedAbr, MemoryAwareAbr, RateBasedAbr
from repro.core.qoe import linear_qoe, summarize
from repro.core.session import StreamingSession
from repro.video.encoding import GENRES, VideoAsset
from repro.video.network import TraceLink

DURATION_S = 40.0

#: A bandwidth trace: fast WiFi with a mid-session dip (seconds, Mbps).
#: The network is mostly *not* the bottleneck — the device is.
NETWORK_TRACE = [
    (0.0, 40.0), (12.0, 6.0), (18.0, 40.0),
]

CONTROLLERS = [
    ("rate-based", lambda: RateBasedAbr()),
    ("buffer-based", lambda: BufferBasedAbr()),
    ("BOLA", lambda: BolaAbr()),
    ("rate + memory-aware", lambda: MemoryAwareAbr(inner=RateBasedAbr())),
    ("BBA  + memory-aware", lambda: MemoryAwareAbr(inner=BufferBasedAbr())),
    ("BOLA + memory-aware", lambda: MemoryAwareAbr(inner=BolaAbr())),
]


def run(abr_factory):
    asset = VideoAsset(
        "Dubai Flow Motion in 4K", GENRES["travel"], DURATION_S,
        resolutions=("240p", "360p", "480p", "720p", "1080p"),
        frame_rates=(24, 48, 60),
    )
    session = StreamingSession(
        device="nokia1",
        asset=asset,
        resolution="360p",
        frame_rate=60,
        pressure="moderate",
        duration_s=DURATION_S,
        seed=11,
        abr=abr_factory(),
    )
    session.player.server.link = TraceLink(NETWORK_TRACE, rtt_ms=25.0)
    return session.run()


def main() -> None:
    print("Variable network + Moderate memory pressure, Nokia 1\n")
    print(f"{'controller':22s} {'drop':>7s} {'rebuf':>7s} {'MOS':>5s} "
          f"{'linQoE':>7s}  outcome")
    for name, factory in CONTROLLERS:
        result = run(factory)
        qoe = summarize(result)
        outcome = (
            f"CRASHED@{result.crash_time_s:.0f}s" if result.crashed else "completed"
        )
        print(f"{name:22s} {result.drop_rate * 100:6.1f}% "
              f"{result.rebuffer_s:6.1f}s {qoe.mos:5.2f} "
              f"{linear_qoe(result):7.2f}  {outcome}")
    print(
        "\nThe memory-aware wrapper trades encoded frame rate for survival:"
        "\nnetwork-only controllers chase the bandwidth while the device"
        "\nitself is the bottleneck — the paper's central argument."
    )


if __name__ == "__main__":
    main()
