"""Tests for the synthetic user-study population."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.study.generator import (
    PopulationConfig,
    _debounce,
    generate_device_log,
    generate_population,
)
from repro.study.signalcapturer import STATE_CODES


SMALL = PopulationConfig(n_users=6, hours_scale=0.05, seed=7)


def test_population_size_and_determinism():
    a = generate_population(SMALL)
    b = generate_population(SMALL)
    assert len(a) == 6
    assert a[0].info.total_mb == b[0].info.total_mb
    assert np.array_equal(a[0].available_mb, b[0].available_mb)


def test_device_log_shapes_consistent():
    log = generate_device_log(0, SMALL, RandomStreams(SMALL.seed))
    n = len(log.timestamps)
    assert len(log.available_mb) == n
    assert len(log.state) == n
    assert len(log.interactive) == n
    assert log.hours_logged > 0


def test_available_memory_within_bounds():
    for log in generate_population(SMALL):
        assert (log.available_mb > 0).all()
        assert (log.available_mb < log.info.total_mb).all()


def test_states_match_available_ordering():
    """Critical samples have lower available memory than Normal ones
    (Figure 5's ordering), modulo debouncing."""
    merged_normal, merged_critical = [], []
    for log in generate_population(PopulationConfig(n_users=12, hours_scale=0.05, seed=2)):
        normal = log.available_mb[log.state == STATE_CODES["normal"]]
        critical = log.available_mb[log.state == STATE_CODES["critical"]]
        if len(normal) and len(critical):
            merged_normal.append(float(normal.mean()))
            merged_critical.append(float(critical.mean()))
    if merged_normal:
        assert np.mean(merged_critical) < np.mean(merged_normal)


def test_signals_only_nonnormal():
    for log in generate_population(SMALL):
        for _, code in log.signals:
            assert code != STATE_CODES["normal"]


def test_signal_times_within_log():
    for log in generate_population(SMALL):
        for t, _ in log.signals:
            assert 0 <= t < len(log.timestamps)


def test_debounce_removes_short_runs():
    state = np.array([0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 0], dtype=np.int8)
    out = _debounce(state, min_dwell_s=3)
    # The single-sample run at index 2 is absorbed; the long run stays.
    assert out[2] == 0
    assert (out[6:13] == 1).all()


def test_debounce_preserves_length_and_first_state():
    rng = np.random.default_rng(3)
    state = rng.integers(0, 4, size=500).astype(np.int8)
    out = _debounce(state, min_dwell_s=5)
    assert len(out) == 500
    assert out[0] == state[0]


def test_interactive_cleaning_threshold():
    from repro.study.analysis import clean

    population = generate_population(SMALL)
    kept = clean(population, min_interactive_hours=1e9)
    assert kept == []
    kept_all = clean(population, min_interactive_hours=0.0)
    assert len(kept_all) == len(population)
    for log in kept_all:
        assert log.interactive.all()


def test_utilization_definition():
    log = generate_device_log(1, SMALL, RandomStreams(SMALL.seed))
    util = log.utilization()
    assert ((util > 0) & (util < 1)).all()
