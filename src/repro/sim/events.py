"""Event primitives for the discrete-event engine.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events at the same instant fire in scheduling order (FIFO), which the
sequence number guarantees.  Cancellation is O(1): the event is flagged
and skipped when it reaches the head of the queue, the standard "lazy
deletion" idiom for heap-backed schedulers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from .clock import Time


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code holds them only to call :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "label")

    def __init__(
        self,
        time: Time,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = self.label or getattr(self.fn, "__name__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} {name}{state}>"


class EventQueue:
    """Min-heap of events ordered by (time, sequence)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: Time,
        fn: Callable[..., Any],
        args: tuple = (),
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` and return the event."""
        event = Event(time, next(self._counter), fn, args, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None when empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[Time]:
        """Return the time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Account for one externally-cancelled event (keeps len() honest)."""
        if self._live > 0:
            self._live -= 1
