"""Project-wide call graph with alias and import resolution.

The single-file rules (REP101–REP110) see one module at a time, which
means a wall-clock read laundered through one function call is
invisible to them.  This module gives the interprocedural passes the
structure they need:

* every function and method in the lint target set, keyed by a stable
  dotted qualname (``repro.kernel.manager.MemoryManager.kill``);
* every call site inside each function, resolved through import
  aliases — including *relative* imports (``from ..sim.rng import
  derive_seed``) — ``self.method()`` dispatch, and same-module names;
* per-function local taint summaries (computed by
  :mod:`repro.analysis.dataflow` during extraction) that the global
  fixpoint then links across the graph.

Everything extracted here is plain data (lists of dataclasses with
``to_dict``/``from_dict``), so per-file results are cacheable as JSON
and the graph can be rebuilt from cached facts without reparsing.
Construction is deliberately order-independent: modules are indexed by
sorted qualname, so shuffling the input file list cannot change any
resolution or any downstream finding (``tests/analysis`` holds this
with a hypothesis property).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Marker prefix for calls that could not be resolved to a project
#: function (``obj.attr()`` on an unknown object): the graph keeps the
#: attribute name for diagnostics but propagates nothing through it.
UNRESOLVED = "?."


def module_name(rel_path: str) -> str:
    """Dotted module name of a posix-style relative path.

    ``src/repro/kernel/manager.py`` -> ``repro.kernel.manager``;
    ``pkg/__init__.py`` -> ``pkg``.  Paths outside a ``src`` layout map
    from their own directory structure, which keeps fixture trees
    addressable.
    """
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


class ImportResolver:
    """Maps names bound in one module to absolute dotted paths.

    Unlike :class:`~repro.analysis.engine.ImportMap` this resolver also
    handles relative imports, anchored at the importing module's
    package: in ``repro.arena.driver``, ``from ..experiments.parallel
    import run_jobs`` binds ``run_jobs`` to
    ``repro.experiments.parallel.run_jobs``.
    """

    def __init__(self, tree: ast.AST, module: str) -> None:
        self.module = module
        package_parts = module.split(".")[:-1] if module else []
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level > 0:
                    anchor = package_parts[: len(package_parts) - (node.level - 1)]
                    base = ".".join([*anchor, base] if base else anchor)
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, or None."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass
class SinkFlow:
    """One value reaching a determinism sink inside a function."""

    kind: str        #: sink family: seed | key | journal | emit
    detail: str      #: human-readable sink description
    line: int
    col: int
    direct: List[str] = field(default_factory=list)   #: taint kinds seen locally
    calls: List[str] = field(default_factory=list)    #: call targets feeding the sink
    params: List[str] = field(default_factory=list)   #: own params feeding the sink

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "detail": self.detail,
            "line": self.line, "col": self.col,
            "direct": list(self.direct), "calls": list(self.calls),
            "params": list(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SinkFlow":
        return cls(
            kind=data["kind"], detail=data["detail"],
            line=data["line"], col=data["col"],
            direct=list(data["direct"]), calls=list(data["calls"]),
            params=list(data["params"]),
        )


@dataclass
class CallSite:
    """One call inside a function, with per-argument taint summaries."""

    target: str      #: resolved dotted path, or ``?.attr`` when unresolved
    line: int
    col: int
    #: Positional-argument taint: (kinds, call targets, own params), one
    #: triple per argument, parallel to the callee's parameter list.
    args: List[Tuple[List[str], List[str], List[str]]] = field(default_factory=list)
    #: Keyword-argument taint, keyed by keyword name.
    kwargs: Dict[str, Tuple[List[str], List[str], List[str]]] = field(
        default_factory=dict
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target, "line": self.line, "col": self.col,
            "args": [list(map(list, a)) for a in self.args],
            "kwargs": {k: list(map(list, v)) for k, v in self.kwargs.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            target=data["target"], line=data["line"], col=data["col"],
            args=[
                (list(a[0]), list(a[1]), list(a[2])) for a in data["args"]
            ],
            kwargs={
                k: (list(v[0]), list(v[1]), list(v[2]))
                for k, v in data["kwargs"].items()
            },
        )


@dataclass
class FunctionInfo:
    """One function or method: identity, calls, and local taint facts."""

    qualname: str                 #: module.Class.name or module.name
    name: str
    module: str
    cls: Optional[str]            #: enclosing class name, or None
    params: List[str]             #: parameter names, ``self``/``cls`` dropped
    line: int
    #: Taint kinds whose values flow to a ``return`` locally.
    return_taint: List[str] = field(default_factory=list)
    #: Call targets whose results flow to a ``return``.
    return_calls: List[str] = field(default_factory=list)
    #: Own parameters whose values flow to a ``return``.
    return_params: List[str] = field(default_factory=list)
    sink_flows: List[SinkFlow] = field(default_factory=list)
    call_sites: List[CallSite] = field(default_factory=list)
    #: Source text of the return annotation, if any (mined by the
    #: pickle-escape pass to resolve payload factory helpers).
    returns_ann: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "name": self.name,
            "module": self.module, "cls": self.cls,
            "params": list(self.params), "line": self.line,
            "return_taint": list(self.return_taint),
            "return_calls": list(self.return_calls),
            "return_params": list(self.return_params),
            "sink_flows": [flow.to_dict() for flow in self.sink_flows],
            "call_sites": [site.to_dict() for site in self.call_sites],
            "returns_ann": self.returns_ann,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"], name=data["name"],
            module=data["module"], cls=data["cls"],
            params=list(data["params"]), line=data["line"],
            return_taint=list(data["return_taint"]),
            return_calls=list(data["return_calls"]),
            return_params=list(data["return_params"]),
            sink_flows=[SinkFlow.from_dict(f) for f in data["sink_flows"]],
            call_sites=[CallSite.from_dict(s) for s in data["call_sites"]],
            returns_ann=data.get("returns_ann"),
        )


def extract_functions(
    tree: ast.AST, module: str, rel_path: str
) -> List[FunctionInfo]:
    """Every function/method in a module, with local taint summaries.

    Module-level statements are collected into a synthetic
    ``<module>`` function so sinks fed at import time are analyzed too.
    """
    from .dataflow import analyze_function  # deferred: avoids a cycle

    resolver = ImportResolver(tree, module)
    local_names = frozenset(
        child.name for child in getattr(tree, "body", [])
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef))
    )
    functions: List[FunctionInfo] = []

    def visit(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual_parts = [module] if module else []
                if cls:
                    qual_parts.append(cls)
                qual_parts.append(child.name)
                functions.append(analyze_function(
                    child, ".".join(qual_parts), module, cls, resolver,
                    local_names,
                ))
                # Nested defs are analyzed as their own (unlinked-by-
                # name) functions; closures over locals are out of model.
                visit(child, cls)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)

    visit(tree, None)
    module_body = [
        stmt for stmt in getattr(tree, "body", [])
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
    ]
    if module_body:
        synthetic = ast.Module(body=module_body, type_ignores=[])
        functions.append(analyze_function(
            synthetic, f"{module}.<module>" if module else "<module>",
            module, None, resolver, local_names,
            synthetic_name="<module>",
        ))
    functions.sort(key=lambda fn: (fn.line, fn.qualname))
    return functions


class CallGraph:
    """The linked whole-program graph over extracted function facts."""

    def __init__(self, per_file: Dict[str, List[FunctionInfo]]) -> None:
        #: qualname -> FunctionInfo, insertion in sorted-qualname order.
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare method name -> sorted owner qualnames (self-call fallback).
        self._by_method: Dict[str, List[str]] = {}
        for rel in sorted(per_file):
            for info in per_file[rel]:
                self.functions[info.qualname] = info
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.cls is not None:
                self._by_method.setdefault(info.name, []).append(qualname)

    def resolve(self, target: str, caller: Optional[FunctionInfo] = None) -> Optional[str]:
        """Resolve a call-site target to a known function qualname."""
        if target.startswith(UNRESOLVED):
            # ``self.method()`` was encoded as ``?.<name>`` plus caller
            # context: prefer a method of the caller's own class.
            name = target[len(UNRESOLVED):]
            if caller is not None and caller.cls is not None:
                own = f"{caller.module}.{caller.cls}.{name}"
                if own in self.functions:
                    return own
                # One level of same-module fallback covers mixins and
                # base classes defined beside their subclass.
                candidates = [
                    qual for qual in self._by_method.get(name, ())
                    if self.functions[qual].module == caller.module
                ]
                if len(candidates) == 1:
                    return candidates[0]
            return None
        if target in self.functions:
            return target
        # A dotted path may name a method through its class
        # (``Class.method`` referenced from another module).
        return None

    def edges(self) -> List[Tuple[str, str]]:
        """Resolved (caller, callee) pairs, sorted — for tests/tools."""
        pairs = set()
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            for site in info.call_sites:
                resolved = self.resolve(site.target, info)
                if resolved is not None:
                    pairs.add((qualname, resolved))
        return sorted(pairs)


def build_call_graph(
    per_file: Dict[str, Sequence[FunctionInfo]]
) -> CallGraph:
    return CallGraph({rel: list(infos) for rel, infos in per_file.items()})
