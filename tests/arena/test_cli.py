"""The ``repro arena`` CLI: smoke, artifacts, interrupts, bad input."""

import json

import pytest

from repro import cli
from repro.arena import ArenaConfig, arena_job_key, arena_jobs
from repro.faults.injector import Fault, installed_plan

SMOKE = [
    "arena",
    "--policies", "pressure,hybrid",
    "--devices", "nokia1",
    "--pressures", "moderate",
    "--reps", "1",
    "--duration", "4",
    "--no-cache",
]

SMOKE_CONFIG = ArenaConfig(
    policies=("pressure", "hybrid"),
    devices=("nokia1",),
    pressures=("moderate",),
    reps=1,
    duration_s=4.0,
)


def run_cli(argv, tmp_path, extra=()):
    return cli.main(
        [*argv, "--journal", str(tmp_path / "arena.journal"), *extra]
    )


def test_arena_smoke_prints_table_and_summary(tmp_path, capsys):
    assert run_cli(SMOKE, tmp_path) == 0
    out = capsys.readouterr().out
    assert "pressure" in out and "hybrid" in out
    assert "digest:" in out
    assert "fabric:" in out


def test_arena_json_emits_the_leaderboard_payload(tmp_path, capsys):
    assert run_cli(SMOKE, tmp_path, ["--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "arena-leaderboard"
    assert {row["policy"] for row in payload["standings"]} == {
        "pressure", "hybrid",
    }
    assert payload["digest"]


def test_arena_out_writes_digest_named_artifact(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    assert run_cli(SMOKE, tmp_path, ["--out", str(out_dir)]) == 0
    capsys.readouterr()
    json_files = sorted(
        p for p in out_dir.glob("leaderboard-*.json")
        if not p.name.endswith(".env.json")  # checksum envelope sidecars
    )
    txt_files = sorted(out_dir.glob("leaderboard-*.txt"))
    assert len(json_files) == 1 and len(txt_files) == 1
    payload = json.loads(json_files[0].read_text())
    # The file is named after the payload's own content address.
    assert json_files[0].name == f"leaderboard-{payload['digest'][:16]}.json"


def test_arena_rejects_unknown_policy(tmp_path, capsys):
    assert cli.main([
        "arena", "--policies", "nope", "--devices", "nokia1",
        "--reps", "1", "--no-cache", "--no-journal",
    ]) == 2
    assert "arena:" in capsys.readouterr().err


def test_arena_interrupt_exits_130_then_resume_completes(tmp_path, capsys):
    grid = arena_jobs(SMOKE_CONFIG)
    fault = Fault(point=f"job:{arena_job_key(grid[1])}", kind="interrupt")
    with installed_plan([fault], tmp_path / "plan"):
        assert run_cli(SMOKE, tmp_path) == 130
    err = capsys.readouterr().err
    assert "arena interrupted: 1/2" in err
    assert "--resume" in err

    assert run_cli(SMOKE, tmp_path, ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "resumed 1" in out
