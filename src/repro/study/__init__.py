"""User-study substrates: population generator, analysis, surveys (§3)."""

from .analysis import (
    available_memory_by_state,
    clean,
    fraction_with_any_signal,
    fraction_with_critical_over,
    high_pressure_time_fractions,
    median_utilizations,
    signal_rates,
    state_episodes,
    study_summary,
    time_in_states,
    top_pressure_devices,
    transition_stats,
    utilization_cdf,
)
from .export import (
    load_device_log,
    load_population,
    save_device_log,
    save_population,
)
from .generator import (
    MANUFACTURERS,
    PopulationConfig,
    generate_device_log,
    generate_population,
)
from .signalcapturer import (
    CAPTURER_FOOTPRINT_MB,
    STATE_CODES,
    STATE_NAMES,
    DeviceInfo,
    DeviceLog,
)
from .survey import (
    ACTIVITIES,
    DmosSurvey,
    UsageSurvey,
    run_dmos_survey,
    run_usage_survey,
)

__all__ = [
    "available_memory_by_state",
    "clean",
    "fraction_with_any_signal",
    "fraction_with_critical_over",
    "high_pressure_time_fractions",
    "median_utilizations",
    "signal_rates",
    "state_episodes",
    "study_summary",
    "time_in_states",
    "top_pressure_devices",
    "transition_stats",
    "utilization_cdf",
    "load_device_log",
    "load_population",
    "save_device_log",
    "save_population",
    "MANUFACTURERS",
    "PopulationConfig",
    "generate_device_log",
    "generate_population",
    "CAPTURER_FOOTPRINT_MB",
    "STATE_CODES",
    "STATE_NAMES",
    "DeviceInfo",
    "DeviceLog",
    "ACTIVITIES",
    "DmosSurvey",
    "UsageSurvey",
    "run_dmos_survey",
    "run_usage_survey",
]
