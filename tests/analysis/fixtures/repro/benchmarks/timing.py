"""Out-of-scope fixture: wall-clock timing is fine in benchmarks."""

import time


def measure(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
