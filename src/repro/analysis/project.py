"""Cross-file facts the contract and whole-program rules check against.

Per-file extraction produces a :class:`FileFacts` record — plain,
JSON-serializable data covering everything the project-level rules need:

* every literal-topic ``emit("topic", ...)``/``on("topic", cb)`` site
  (REP201–REP203) plus the payload *shapes* and handler signatures the
  schema-inference pass types against (REP220-series);
* module-level ``SCHEMA_VERSION``/``SCHEMA_FINGERPRINT`` constants and
  the ``SessionResult`` field list (REP204);
* per-function call sites and taint summaries feeding the
  interprocedural determinism pass (REP120-series);
* class field shapes and process-boundary submission sites feeding the
  pickle-escape pass (REP130).

Because ``FileFacts`` round-trips through JSON, the analysis cache can
persist it per file and a later run can rebuild the whole
:class:`ProjectIndex` — including the call graph — without reparsing
unchanged files.  Everything is syntactic: no imports are executed, so
the linter runs on broken or dependency-free checkouts.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple,
)

from .callgraph import CallGraph, FunctionInfo, module_name
from .dataflow import (
    ClassShape, PickleEscape, SubmitSite, TaintAnalysis,
    extract_classes, extract_submit_sites,
)
from .schema_infer import (
    EmitShape, HandlerShape, SchemaModel, SubscriptionShape,
    extract_schema_facts,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from .engine import SourceFile


@dataclass(frozen=True)
class TopicSite:
    """One emit() or on() call with a literal topic string."""

    topic: str
    path: str
    line: int
    col: int
    #: Keyword names passed alongside the topic (emit payload keys).
    payload_keys: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topic": self.topic, "path": self.path,
            "line": self.line, "col": self.col,
            "payload_keys": list(self.payload_keys),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopicSite":
        return cls(
            topic=data["topic"], path=data["path"],
            line=data["line"], col=data["col"],
            payload_keys=tuple(data["payload_keys"]),
        )


@dataclass(frozen=True)
class ConstantSite:
    """A module-level constant assignment (SCHEMA_VERSION and friends)."""

    name: str
    value: object
    path: str
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "value": self.value,
            "path": self.path, "line": self.line,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConstantSite":
        return cls(
            name=data["name"], value=data["value"],
            path=data["path"], line=data["line"],
        )


def session_result_fingerprint(fields: Sequence[Tuple[str, str]]) -> str:
    """Digest of the (ordered) SessionResult field list.

    Any change to field names, order, or annotations changes this value,
    which REP204 requires to match the recorded ``SCHEMA_FINGERPRINT`` —
    forcing a deliberate, reviewed ``SCHEMA_VERSION`` bump whenever the
    cached payload shape moves.
    """
    blob = "\n".join(f"{name}:{annotation}" for name, annotation in fields)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class FileFacts:
    """Everything the project rules need from one file, as plain data."""

    rel: str
    module: str
    emits: List[TopicSite] = field(default_factory=list)
    subscriptions: List[TopicSite] = field(default_factory=list)
    dynamic_topics: List[TopicSite] = field(default_factory=list)
    constants: List[ConstantSite] = field(default_factory=list)
    session_result_fields: Optional[List[Tuple[str, str]]] = None
    session_result_line: Optional[int] = None
    functions: List[FunctionInfo] = field(default_factory=list)
    emit_shapes: List[EmitShape] = field(default_factory=list)
    sub_shapes: List[SubscriptionShape] = field(default_factory=list)
    handlers: List[HandlerShape] = field(default_factory=list)
    classes: List[ClassShape] = field(default_factory=list)
    submit_sites: List[SubmitSite] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rel": self.rel,
            "module": self.module,
            "emits": [s.to_dict() for s in self.emits],
            "subscriptions": [s.to_dict() for s in self.subscriptions],
            "dynamic_topics": [s.to_dict() for s in self.dynamic_topics],
            "constants": [s.to_dict() for s in self.constants],
            "session_result_fields": (
                [list(f) for f in self.session_result_fields]
                if self.session_result_fields is not None else None
            ),
            "session_result_line": self.session_result_line,
            "functions": [f.to_dict() for f in self.functions],
            "emit_shapes": [s.to_dict() for s in self.emit_shapes],
            "sub_shapes": [s.to_dict() for s in self.sub_shapes],
            "handlers": [h.to_dict() for h in self.handlers],
            "classes": [c.to_dict() for c in self.classes],
            "submit_sites": [s.to_dict() for s in self.submit_sites],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileFacts":
        fields_raw = data["session_result_fields"]
        return cls(
            rel=data["rel"],
            module=data["module"],
            emits=[TopicSite.from_dict(s) for s in data["emits"]],
            subscriptions=[
                TopicSite.from_dict(s) for s in data["subscriptions"]
            ],
            dynamic_topics=[
                TopicSite.from_dict(s) for s in data["dynamic_topics"]
            ],
            constants=[ConstantSite.from_dict(s) for s in data["constants"]],
            session_result_fields=(
                [(f[0], f[1]) for f in fields_raw]
                if fields_raw is not None else None
            ),
            session_result_line=data["session_result_line"],
            functions=[FunctionInfo.from_dict(f) for f in data["functions"]],
            emit_shapes=[EmitShape.from_dict(s) for s in data["emit_shapes"]],
            sub_shapes=[
                SubscriptionShape.from_dict(s) for s in data["sub_shapes"]
            ],
            handlers=[HandlerShape.from_dict(h) for h in data["handlers"]],
            classes=[ClassShape.from_dict(c) for c in data["classes"]],
            submit_sites=[
                SubmitSite.from_dict(s) for s in data["submit_sites"]
            ],
        )


def extract_file_facts(rel: str, tree: ast.AST) -> FileFacts:
    """Run every per-file extraction pass over one parsed module."""
    from .callgraph import extract_functions

    module = module_name(rel)
    facts = FileFacts(rel=rel, module=module)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            _scan_call(facts, node)
        elif isinstance(node, ast.ClassDef) and node.name == "SessionResult":
            fields: List[Tuple[str, str]] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    fields.append(
                        (stmt.target.id, ast.unparse(stmt.annotation))
                    )
            facts.session_result_fields = fields
            facts.session_result_line = node.lineno
        elif isinstance(node, ast.Assign):
            _scan_assign(facts, node)
    facts.functions = extract_functions(tree, module, rel)
    facts.emit_shapes, facts.sub_shapes, facts.handlers = (
        extract_schema_facts(tree, module)
    )
    facts.classes = extract_classes(tree, module)
    facts.submit_sites = extract_submit_sites(tree, module)
    return facts


def _scan_call(facts: FileFacts, node: ast.Call) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in ("emit", "on"):
        return
    if not node.args:
        return
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        site = TopicSite(
            topic=first.value,
            path=facts.rel,
            line=node.lineno,
            col=node.col_offset + 1,
            payload_keys=tuple(
                kw.arg for kw in node.keywords if kw.arg is not None
            ),
        )
        if func.attr == "emit":
            facts.emits.append(site)
        else:
            # Require the (topic, callback) shape so unrelated .on()
            # APIs (e.g. event-emitter libraries) are not swept in.
            if len(node.args) == 2:
                facts.subscriptions.append(site)
    elif func.attr == "emit":
        facts.dynamic_topics.append(TopicSite(
            topic="<dynamic>",
            path=facts.rel,
            line=node.lineno,
            col=node.col_offset + 1,
        ))


def _scan_assign(facts: FileFacts, node: ast.Assign) -> None:
    for target in node.targets:
        if isinstance(target, ast.Name) and target.id in (
            "SCHEMA_VERSION", "SCHEMA_FINGERPRINT"
        ):
            value: object = None
            if isinstance(node.value, ast.Constant):
                value = node.value.value
            facts.constants.append(ConstantSite(
                name=target.id,
                value=value,
                path=facts.rel,
                line=node.lineno,
            ))


class ProjectIndex:
    """Facts extracted from every file in the lint target set.

    Builds either directly from parsed :class:`SourceFile` objects or —
    via :meth:`from_facts` — from cached :class:`FileFacts` records.
    The heavyweight whole-program models (call graph, taint closure,
    schema model, escape analysis) are constructed lazily so rule
    subsets that never touch them pay nothing.
    """

    def __init__(self, files: Sequence["SourceFile"]) -> None:
        facts = [
            extract_file_facts(src.rel, src.tree)
            for src in files if src.tree is not None
        ]
        self._init_from_facts(facts)

    @classmethod
    def from_facts(cls, facts: Sequence[FileFacts]) -> "ProjectIndex":
        index = cls.__new__(cls)
        index._init_from_facts(list(facts))
        return index

    def _init_from_facts(self, facts: Sequence[FileFacts]) -> None:
        ordered = sorted(facts, key=lambda f: f.rel)
        self.facts: Dict[str, FileFacts] = {f.rel: f for f in ordered}
        self.emits: List[TopicSite] = []
        self.subscriptions: List[TopicSite] = []
        self.dynamic_topics: List[TopicSite] = []
        self.constants: Dict[str, List[ConstantSite]] = {}
        #: Ordered (name, annotation) pairs of the SessionResult fields.
        self.session_result_fields: Optional[List[Tuple[str, str]]] = None
        self.session_result_site: Optional[Tuple[str, int]] = None
        #: Dotted module name -> relative path (for model findings).
        self.module_paths: Dict[str, str] = {}
        for f in ordered:
            self.emits.extend(f.emits)
            self.subscriptions.extend(f.subscriptions)
            self.dynamic_topics.extend(f.dynamic_topics)
            for site in f.constants:
                self.constants.setdefault(site.name, []).append(site)
            if f.session_result_fields is not None:
                self.session_result_fields = f.session_result_fields
                self.session_result_site = (f.rel, f.session_result_line or 1)
            self.module_paths[f.module] = f.rel
        self._call_graph: Optional[CallGraph] = None
        self._taint: Optional[TaintAnalysis] = None
        self._schema: Optional[SchemaModel] = None
        self._escape: Optional[PickleEscape] = None

    # -- lazy whole-program models --------------------------------------
    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = CallGraph({
                rel: f.functions for rel, f in self.facts.items()
            })
        return self._call_graph

    @property
    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = TaintAnalysis(self.call_graph)
        return self._taint

    @property
    def schema(self) -> SchemaModel:
        if self._schema is None:
            self._schema = SchemaModel(
                emits=[s for f in self.facts.values() for s in f.emit_shapes],
                subscriptions=[
                    s for f in self.facts.values() for s in f.sub_shapes
                ],
                handlers=[h for f in self.facts.values() for h in f.handlers],
            )
        return self._schema

    @property
    def escape(self) -> PickleEscape:
        if self._escape is None:
            self._escape = PickleEscape(
                classes=[c for f in self.facts.values() for c in f.classes],
                submit_sites=[
                    s for f in self.facts.values() for s in f.submit_sites
                ],
                functions=self.call_graph.functions,
            )
        return self._escape

    def path_of_module(self, module: str) -> Optional[str]:
        return self.module_paths.get(module)

    # ------------------------------------------------------------------
    @property
    def emitted_topics(self) -> Dict[str, List[TopicSite]]:
        grouped: Dict[str, List[TopicSite]] = {}
        for site in self.emits:
            grouped.setdefault(site.topic, []).append(site)
        return grouped

    @property
    def subscribed_topics(self) -> Dict[str, List[TopicSite]]:
        grouped: Dict[str, List[TopicSite]] = {}
        for site in self.subscriptions:
            grouped.setdefault(site.topic, []).append(site)
        return grouped
