"""Shared test configuration.

Registers hypothesis profiles so property tests are reproducible and
CI-budgeted:

* ``ci`` (default) — derandomized (examples derive from the test body,
  not a random seed), capped example count, no per-example deadline
  (the simulator's first call warms several module caches).
* ``dev`` — small randomized profile for quick local iteration; select
  with ``HYPOTHESIS_PROFILE=dev``.
* ``thorough`` — larger randomized sweep for hunting rare interleavings
  before refreshing golden traces.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=20, deadline=None)
settings.register_profile(
    "thorough",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
