"""Suppression fixture: scoped, bare, and non-repro noqa comments."""

import random


def scoped() -> float:
    return random.uniform(0.0, 1.0)  # repro: noqa[REP102]


def bare() -> float:
    return random.uniform(0.0, 1.0)  # repro: noqa


def wrong_rule() -> float:
    return random.uniform(0.0, 1.0)  # repro: noqa[REP101]


def plain_noqa() -> float:
    return random.uniform(0.0, 1.0)  # noqa
