"""REP105 fixture: id()-based tie-breaking."""


def tie_break(candidates: list) -> object:
    return max(candidates, key=lambda p: (p.score, id(p)))
