"""The lint rule engine: file model, rule dispatch, suppressions.

The runtime validation subsystem (:mod:`repro.validate`) catches an
invariant *after* it breaks; this package stops whole classes of breakage
from being written at all.  The engine is deliberately small:

* a :class:`SourceFile` is parsed once (AST + raw lines + suppression
  comments) and handed to every applicable rule;
* a :class:`Rule` inspects one file at a time; a :class:`ProjectRule`
  additionally sees a :class:`~repro.analysis.project.ProjectIndex`
  built over the whole lint target (for cross-file contracts such as
  emit/subscribe topic agreement);
* findings are plain data (:class:`Finding`) with a stable fingerprint,
  which is what the baseline mechanism keys on.

Suppressions are explicit and auditable: a line carrying
``# repro: noqa[RULE1,RULE2]`` (or a bare ``# repro: noqa``) silences
findings reported *on that line*.  Plain ``# noqa`` is deliberately not
honoured — determinism exemptions should be greppable as policy
decisions, not drive-by linter hushes.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Severity levels, ordered.  Every shipped rule currently reports
#: ``error`` (the CI gate fails on any new finding); the field exists so
#: advisory rules can be added without changing the reporters.
SEVERITIES = ("warning", "error")

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: str
    path: str  #: posix-style path relative to the lint root
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + message.

        Line numbers are deliberately excluded so unrelated edits above
        a grandfathered finding do not un-baseline it.
        """
        blob = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class SourceFile:
    """One parsed lint target: AST, raw lines, suppressions, scope."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.root = root
        try:
            self.rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            self.rel = path.as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(self.text)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        #: line number -> None (suppress everything) or set of rule ids.
        self.noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self.noqa[lineno] = None
            else:
                names = frozenset(
                    name.strip().upper()
                    for name in rules.split(",")
                    if name.strip()
                )
                self.noqa[lineno] = names or None
        self.scope = scope_key(self.rel)

    def suppressed(self, finding: Finding) -> bool:
        """True when a ``# repro: noqa`` on the finding's line covers it."""
        entry = self.noqa.get(finding.line, False)
        if entry is False:
            return False
        if entry is None:
            return True
        assert isinstance(entry, frozenset)
        return finding.rule in entry


def scope_key(rel_path: str) -> Optional[str]:
    """The ``repro`` subpackage a path belongs to, or None.

    ``src/repro/kernel/manager.py`` -> ``kernel``; ``repro/cli.py`` ->
    ``""`` (package top level); paths without a ``repro`` segment map to
    None and match only unscoped rules.
    """
    parts = rel_path.split("/")
    try:
        index = parts.index("repro")
    except ValueError:
        return None
    remainder = parts[index + 1:]
    if not remainder:
        return None
    if len(remainder) == 1:  # a module directly under repro/
        return ""
    return remainder[0]


class Rule:
    """Base class for single-file rules.

    Subclasses set :attr:`id` (``REPnnn``), :attr:`title`,
    :attr:`rationale`, and optionally :attr:`scope` — a frozenset of
    ``repro`` subpackage names the rule is confined to (None applies the
    rule everywhere).
    """

    id: str = "REP000"
    title: str = ""
    rationale: str = ""
    severity: str = "error"
    scope: Optional[FrozenSet[str]] = None

    def applies_to(self, src: SourceFile) -> bool:
        if self.scope is None:
            return True
        return src.scope is not None and src.scope in self.scope

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        return ()

    def finding(
        self, src: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=src.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole-project index (cross-file contracts)."""

    def check_project(self, index: "ProjectIndex") -> Iterable[Finding]:
        return ()


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
class ImportMap:
    """Resolves names in one module to dotted import paths.

    Handles ``import time``, ``import numpy as np``, and ``from time
    import perf_counter as pc``; method calls resolve through attribute
    chains (``dt.datetime.now`` -> ``datetime.datetime.now`` when ``dt``
    aliases ``datetime``).
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, or None."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# Engine entry point
# ----------------------------------------------------------------------
from .project import FileFacts, ProjectIndex, extract_file_facts  # noqa: E402


@dataclass
class LintResult:
    """Outcome of one lint run, before/after baseline filtering."""

    findings: List[Finding]          #: new findings (fail the run)
    baselined: List[Finding]         #: grandfathered via the baseline
    suppressed: List[Finding]        #: silenced by ``# repro: noqa``
    files_checked: int
    rules_run: List[str]
    files_analyzed: int = 0          #: cache misses (parsed + analyzed)
    files_cached: int = 0            #: cache hits (facts + findings replayed)

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[Path], root: Path) -> List[SourceFile]:
    """All python files under ``paths``, parsed, in deterministic order."""
    seen: Dict[str, SourceFile] = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            src = SourceFile(path, root)
            seen[src.rel] = src
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                src = SourceFile(candidate, root)
                seen[src.rel] = src
    return [seen[rel] for rel in sorted(seen)]


def collect_paths(paths: Sequence[Path], root: Path) -> List[Tuple[Path, str]]:
    """``(absolute path, rel)`` pairs under ``paths`` — no parsing.

    The cached/parallel driver wants to hash file contents and decide
    hit/miss *before* paying for the parse, so discovery is separate
    from :func:`collect_files` (which both parses eagerly).
    """
    seen: Dict[str, Path] = {}

    def rel_of(path: Path) -> str:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    for path in paths:
        if path.is_file() and path.suffix == ".py":
            seen[rel_of(path)] = path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen[rel_of(candidate)] = candidate
    return [(seen[rel], rel) for rel in sorted(seen)]


# ----------------------------------------------------------------------
# Per-file analysis records (the unit of caching and parallelism)
# ----------------------------------------------------------------------
def _finding_to_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def _finding_from_dict(data: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(data["rule"]),
        severity=str(data["severity"]),
        path=str(data["path"]),
        line=int(data["line"]),       # type: ignore[arg-type]
        col=int(data["col"]),         # type: ignore[arg-type]
        message=str(data["message"]),
    )


@dataclass
class FileAnalysis:
    """Everything one file contributes to a lint run.

    Fully JSON-serializable so it can cross the worker-pool pickle
    boundary and live in the content-addressed cache: single-file rule
    findings (already split by suppression), the noqa map (project-rule
    findings are suppressed against it later), and the
    :class:`~repro.analysis.project.FileFacts` the whole-program passes
    consume.  ``facts`` is None for files that failed to parse.
    """

    rel: str
    findings: List[Finding]
    suppressed: List[Finding]
    noqa: Dict[int, Optional[FrozenSet[str]]]
    facts: Optional[FileFacts]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rel": self.rel,
            "findings": [_finding_to_dict(f) for f in self.findings],
            "suppressed": [_finding_to_dict(f) for f in self.suppressed],
            "noqa": {
                str(line): (None if rules is None else sorted(rules))
                for line, rules in self.noqa.items()
            },
            "facts": None if self.facts is None else self.facts.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FileAnalysis":
        noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        for line, rules in data.get("noqa", {}).items():  # type: ignore[union-attr]
            noqa[int(line)] = None if rules is None else frozenset(rules)
        facts_data = data.get("facts")
        return cls(
            rel=str(data["rel"]),
            findings=[_finding_from_dict(f) for f in data["findings"]],  # type: ignore[union-attr]
            suppressed=[_finding_from_dict(f) for f in data["suppressed"]],  # type: ignore[union-attr]
            noqa=noqa,
            facts=None if facts_data is None else FileFacts.from_dict(facts_data),  # type: ignore[arg-type]
        )


def analyze_file(src: SourceFile, rules: Sequence[Rule]) -> FileAnalysis:
    """Run the single-file rules and extract facts for one file."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    facts: Optional[FileFacts] = None
    if src.tree is None:
        assert src.syntax_error is not None
        findings.append(Finding(
            rule="REP001",
            severity="error",
            path=src.rel,
            line=src.syntax_error.lineno or 1,
            col=(src.syntax_error.offset or 0) + 1,
            message=f"syntax error: {src.syntax_error.msg}",
        ))
    else:
        for rule in rules:
            if isinstance(rule, ProjectRule) or not rule.applies_to(src):
                continue
            for finding in rule.check_file(src):
                if src.suppressed(finding):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
        facts = extract_file_facts(src.rel, src.tree)
    return FileAnalysis(
        rel=src.rel,
        findings=findings,
        suppressed=suppressed,
        noqa=dict(src.noqa),
        facts=facts,
    )


def _noqa_covers(
    noqa: Dict[int, Optional[FrozenSet[str]]], finding: Finding
) -> bool:
    entry = noqa.get(finding.line, False)
    if entry is False:
        return False
    return entry is None or finding.rule in entry


def finish_run(
    analyses: Sequence[FileAnalysis], rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Merge per-file analyses and run the whole-program rules.

    This is the single merge point for the serial, parallel, and cached
    drivers, which is what makes their outputs byte-identical: however
    an analysis record was produced, the project rules see the same
    facts and the same deterministic ordering.
    """
    ordered = sorted(analyses, key=lambda a: a.rel)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for analysis in ordered:
        findings.extend(analysis.findings)
        suppressed.extend(analysis.suppressed)

    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if project_rules:
        index = ProjectIndex.from_facts(
            [a.facts for a in ordered if a.facts is not None]
        )
        noqa_by_rel = {a.rel: a.noqa for a in ordered}
        for rule in project_rules:
            for finding in rule.check_project(index):
                noqa = noqa_by_rel.get(finding.path, {})
                if _noqa_covers(noqa, finding):
                    suppressed.append(finding)
                else:
                    findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def run_rules(
    files: Sequence[SourceFile],
    rules: Sequence[Rule],
) -> Tuple[List[Finding], List[Finding]]:
    """Run every rule over every applicable file.

    Returns ``(findings, suppressed)``; baseline filtering happens in
    the caller so ``--update-baseline`` sees the raw set.
    """
    return finish_run([analyze_file(src, rules) for src in files], rules)
