"""Android kernel memory-management substrate.

Implements the mechanisms §2 of the paper describes: page pools with
zRAM, the kswapd background reclaimer, the lmkd low-memory killer with
its ``P = (1 - R/S) * 100`` metric, the mmcqd storage queue daemon, the
direct-reclaim allocation path, and OnTrimMemory pressure signals.
"""

from .kswapd import Kswapd
from .lmkd import Lmkd
from .manager import MemoryManager
from .memory import (
    PAGES_PER_MB,
    MemoryAccountingError,
    MemoryState,
    Watermarks,
    mb_to_pages,
    pages_to_mb,
)
from .mmcqd import Mmcqd
from .pressure import MemoryPressureLevel, PressureMonitor, PressureThresholds
from .process import MemProcess, OomAdj, PagePools, ProcessTable
from .reclaim import ReclaimPlan, build_plan
from .vmstat import VmStat

__all__ = [
    "Kswapd",
    "Lmkd",
    "MemoryManager",
    "PAGES_PER_MB",
    "MemoryAccountingError",
    "MemoryState",
    "Watermarks",
    "mb_to_pages",
    "pages_to_mb",
    "Mmcqd",
    "MemoryPressureLevel",
    "PressureMonitor",
    "PressureThresholds",
    "MemProcess",
    "OomAdj",
    "PagePools",
    "ProcessTable",
    "ReclaimPlan",
    "build_plan",
    "VmStat",
]
