"""Emit-bus payload schema inference.

The simulator's event bus is stringly typed: ``sim.emit("video.frame",
phase=..., pipeline=..., late=...)`` fans out to every subscriber as
``callback(time=now, **payload)``.  REP201–REP203 check *topic names*
across the project; this pass checks *payload shapes*:

* every literal-topic emit site contributes a shape — the set of keyword
  names it passes (plus whether it forwards ``**payload`` opaquely);
* every subscription is linked to its handler — a method
  (``sim.on("t", self._on_t)``), a module-level function, or an inline
  lambda — and the handler's *reads* are extracted: named parameters,
  ``payload.get("k")``, ``payload["k"]``, and ``"k" in payload``;
* the per-topic schema is the union of its emit-site shapes, against
  which each subscriber is type-checked (REP220 missing/unacceptable
  keys, REP221 dead keys no subscriber reads, REP222 phantom keys no
  emit site provides).

A handler that does anything else with its ``**kwargs`` (iterates it,
forwards it, stores it) is *opaque*: it reads everything, so dead-key
reasoning is disabled for its topics rather than guessed at.

Extraction here is per-file and JSON-serializable (cache-friendly);
linking happens in :class:`SchemaModel` over the whole target set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class EmitShape:
    """One ``emit("topic", k=v, ...)`` call site's payload shape."""

    topic: str
    module: str
    line: int
    col: int
    keys: List[str] = field(default_factory=list)
    #: True when the site forwards ``**something`` — its full key set is
    #: statically unknown, which disables phantom-key checks for the topic.
    splat: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topic": self.topic, "module": self.module,
            "line": self.line, "col": self.col,
            "keys": list(self.keys), "splat": self.splat,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EmitShape":
        return cls(
            topic=data["topic"], module=data["module"],
            line=data["line"], col=data["col"],
            keys=list(data["keys"]), splat=data["splat"],
        )


@dataclass
class HandlerShape:
    """What one callback accepts and reads from its payload."""

    ref: str                       #: "Class.method" or bare function name
    module: str
    line: int
    col: int
    #: (name, has_default) pairs, ``self``/``cls`` stripped.
    params: List[Tuple[str, bool]] = field(default_factory=list)
    kwargs_name: Optional[str] = None   #: ``**payload`` catch-all, if any
    has_star_args: bool = False
    #: Keys read optionally: ``payload.get("k")`` / ``"k" in payload``.
    gets: List[str] = field(default_factory=list)
    #: Keys read unconditionally: ``payload["k"]``.
    requires: List[str] = field(default_factory=list)
    #: The catch-all is used wholesale (iterated/forwarded/stored) — the
    #: handler effectively reads every key.
    opaque: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ref": self.ref, "module": self.module,
            "line": self.line, "col": self.col,
            "params": [list(p) for p in self.params],
            "kwargs_name": self.kwargs_name,
            "has_star_args": self.has_star_args,
            "gets": list(self.gets), "requires": list(self.requires),
            "opaque": self.opaque,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HandlerShape":
        return cls(
            ref=data["ref"], module=data["module"],
            line=data["line"], col=data["col"],
            params=[(p[0], bool(p[1])) for p in data["params"]],
            kwargs_name=data["kwargs_name"],
            has_star_args=data["has_star_args"],
            gets=list(data["gets"]), requires=list(data["requires"]),
            opaque=data["opaque"],
        )

    # -- derived views --------------------------------------------------
    def param_names(self) -> List[str]:
        return [name for name, _ in self.params]

    def required_names(self) -> List[str]:
        """Payload keys this handler cannot be called without."""
        required = [
            name for name, has_default in self.params
            if not has_default and name != "time"
        ]
        required.extend(k for k in self.requires if k not in required)
        return required

    def read_keys(self) -> List[str]:
        """Every payload key the handler names (any mode of access)."""
        keys = [name for name in self.param_names() if name != "time"]
        for key in list(self.gets) + list(self.requires):
            if key not in keys:
                keys.append(key)
        return keys

    def names_payload_keys(self) -> bool:
        """True when the handler destructures at least one payload key.

        A catch-all-only handler (``def _on_event(self, time,
        **_payload)``) expresses no opinion about the payload shape and
        is excluded from dead-key reasoning.
        """
        return bool(self.read_keys())


@dataclass
class SubscriptionShape:
    """One ``on("topic", callback)`` site with its resolved handler ref."""

    topic: str
    module: str
    line: int
    col: int
    #: "Class.method" / bare function name, or None when the callback is
    #: an inline lambda (then ``inline`` carries the shape) or
    #: statically unresolvable (partial application etc.).
    handler_ref: Optional[str] = None
    inline: Optional[HandlerShape] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topic": self.topic, "module": self.module,
            "line": self.line, "col": self.col,
            "handler_ref": self.handler_ref,
            "inline": self.inline.to_dict() if self.inline else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SubscriptionShape":
        return cls(
            topic=data["topic"], module=data["module"],
            line=data["line"], col=data["col"],
            handler_ref=data["handler_ref"],
            inline=HandlerShape.from_dict(data["inline"])
            if data["inline"] else None,
        )


# ----------------------------------------------------------------------
# Per-file extraction
# ----------------------------------------------------------------------
def _kwargs_reads(
    body: Sequence[ast.AST], kwargs_name: str
) -> Tuple[List[str], List[str], bool]:
    """(optional reads, required reads, opaque) for a ``**kwargs`` param."""
    gets: List[str] = []
    requires: List[str] = []
    consumed: set = set()
    nodes = [n for stmt in body for n in ast.walk(stmt)]
    for node in nodes:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if isinstance(recv, ast.Name) and recv.id == kwargs_name \
                    and node.func.attr == "get" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    if first.value not in gets:
                        gets.append(first.value)
                    consumed.add(id(recv))
        elif isinstance(node, ast.Subscript):
            recv = node.value
            if isinstance(recv, ast.Name) and recv.id == kwargs_name:
                key = node.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    if key.value not in requires:
                        requires.append(key.value)
                    consumed.add(id(recv))
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.In, ast.NotIn)):
            recv = node.comparators[0]
            if isinstance(recv, ast.Name) and recv.id == kwargs_name \
                    and isinstance(node.left, ast.Constant) \
                    and isinstance(node.left.value, str):
                if node.left.value not in gets:
                    gets.append(node.left.value)
                consumed.add(id(recv))
    opaque = any(
        isinstance(node, ast.Name) and node.id == kwargs_name
        and id(node) not in consumed
        for node in nodes
    )
    return gets, requires, opaque


def _shape_from_args(
    ref: str,
    module: str,
    line: int,
    col: int,
    args: ast.arguments,
    body: Sequence[ast.AST],
    drop_self: bool,
) -> HandlerShape:
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    padded = [False] * (len(positional) - len(defaults)) + [True] * len(defaults)
    params = list(zip([a.arg for a in positional], padded))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append((arg.arg, default is not None))
    if drop_self and params and params[0][0] in ("self", "cls"):
        params = params[1:]
    kwargs_name = args.kwarg.arg if args.kwarg else None
    gets: List[str] = []
    requires: List[str] = []
    opaque = False
    if kwargs_name is not None:
        gets, requires, opaque = _kwargs_reads(body, kwargs_name)
    return HandlerShape(
        ref=ref, module=module, line=line, col=col,
        params=params, kwargs_name=kwargs_name,
        has_star_args=args.vararg is not None,
        gets=gets, requires=requires, opaque=opaque,
    )


def extract_schema_facts(
    tree: ast.AST, module: str
) -> Tuple[List[EmitShape], List[SubscriptionShape], List[HandlerShape]]:
    """All emit shapes, subscriptions, and handler shapes in one module."""
    emits: List[EmitShape] = []
    subs: List[SubscriptionShape] = []
    handlers: List[HandlerShape] = []

    def handler_ref_of(expr: ast.AST, cls: Optional[str]) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) \
                and expr.value.id in ("self", "cls") and cls is not None:
            return f"{cls}.{expr.attr}"
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def scan_call(node: ast.Call, cls: Optional[str]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or not node.args:
            return
        first = node.args[0]
        literal = isinstance(first, ast.Constant) and isinstance(first.value, str)
        if func.attr == "emit" and literal:
            emits.append(EmitShape(
                topic=first.value, module=module,
                line=node.lineno, col=node.col_offset + 1,
                keys=sorted(
                    kw.arg for kw in node.keywords if kw.arg is not None
                ),
                splat=any(kw.arg is None for kw in node.keywords),
            ))
        elif func.attr == "on" and literal and len(node.args) == 2:
            callback = node.args[1]
            inline: Optional[HandlerShape] = None
            if isinstance(callback, ast.Lambda):
                inline = _shape_from_args(
                    "<lambda>", module, callback.lineno,
                    callback.col_offset + 1, callback.args,
                    [ast.Expr(value=callback.body)], drop_self=False,
                )
            subs.append(SubscriptionShape(
                topic=first.value, module=module,
                line=node.lineno, col=node.col_offset + 1,
                handler_ref=handler_ref_of(callback, cls),
                inline=inline,
            ))

    def walk(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ref = f"{cls}.{child.name}" if cls else child.name
                handlers.append(_shape_from_args(
                    ref, module, child.lineno, child.col_offset + 1,
                    child.args, child.body, drop_self=cls is not None,
                ))
                walk(child, cls)
            else:
                if isinstance(child, ast.Call):
                    scan_call(child, cls)
                walk(child, cls)

    walk(tree, None)
    emits.sort(key=lambda e: (e.line, e.col, e.topic))
    subs.sort(key=lambda s: (s.line, s.col, s.topic))
    handlers.sort(key=lambda h: (h.line, h.col, h.ref))
    return emits, subs, handlers


# ----------------------------------------------------------------------
# Whole-project linking
# ----------------------------------------------------------------------
@dataclass
class LinkedSubscriber:
    subscription: SubscriptionShape
    handler: Optional[HandlerShape]


class SchemaModel:
    """Per-topic union of emit shapes plus linked subscribers."""

    def __init__(
        self,
        emits: Sequence[EmitShape],
        subscriptions: Sequence[SubscriptionShape],
        handlers: Sequence[HandlerShape],
    ) -> None:
        self.emits = sorted(
            emits, key=lambda e: (e.module, e.line, e.col, e.topic),
        )
        self._by_ref: Dict[Tuple[str, str], HandlerShape] = {}
        self._by_basename: Dict[str, List[HandlerShape]] = {}
        for shape in sorted(handlers, key=lambda h: (h.module, h.line)):
            self._by_ref.setdefault((shape.module, shape.ref), shape)
            base = shape.ref.rsplit(".", 1)[-1]
            self._by_basename.setdefault(base, []).append(shape)
        self.subscribers: List[LinkedSubscriber] = [
            LinkedSubscriber(sub, self._resolve_handler(sub))
            for sub in sorted(
                subscriptions, key=lambda s: (s.module, s.line, s.col),
            )
        ]

    def _resolve_handler(
        self, sub: SubscriptionShape
    ) -> Optional[HandlerShape]:
        if sub.inline is not None:
            return sub.inline
        if sub.handler_ref is None:
            return None
        direct = self._by_ref.get((sub.module, sub.handler_ref))
        if direct is not None:
            return direct
        # Cross-module callbacks: match by exact ref first, then by
        # unique basename (deterministic: candidate lists are sorted).
        exact = [
            shape for (module, ref), shape in sorted(self._by_ref.items())
            if ref == sub.handler_ref
        ]
        if len(exact) == 1:
            return exact[0]
        base = sub.handler_ref.rsplit(".", 1)[-1]
        candidates = self._by_basename.get(base, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- topic views ----------------------------------------------------
    def topics(self) -> List[str]:
        names = {e.topic for e in self.emits}
        names.update(s.subscription.topic for s in self.subscribers)
        return sorted(names)

    def emit_sites(self, topic: str) -> List[EmitShape]:
        return [e for e in self.emits if e.topic == topic]

    def topic_subscribers(self, topic: str) -> List[LinkedSubscriber]:
        return [
            s for s in self.subscribers if s.subscription.topic == topic
        ]

    def union_keys(self, topic: str) -> List[str]:
        """Every payload key any emit site of ``topic`` provides."""
        keys: List[str] = []
        for site in self.emit_sites(topic):
            for key in site.keys:
                if key not in keys:
                    keys.append(key)
        return sorted(keys)

    def has_splat_emit(self, topic: str) -> bool:
        return any(site.splat for site in self.emit_sites(topic))
