"""The kernel swap daemon (*kswapd*).

kswapd wakes when free memory falls below the low watermark and
reclaims in the background until the high watermark is restored (§2).
It runs at the **same scheduling priority as foreground threads** —
the paper found 77.9% of Firefox threads share its priority — so under
sustained pressure the video client must fair-share the CPU with a
daemon that is scanning and compressing pages continuously (§5: kswapd
became the single most-running thread, 2.3 s → 22 s).
"""

from __future__ import annotations

from ..sched.scheduler import SchedClass, Scheduler, Thread
from ..sim.clock import millis
from ..sim.engine import Simulator
from .manager import MemoryManager
from .reclaim import build_plan

#: Pages per reclaim batch (2 MiB) — one loop iteration of balance_pgdat.
BATCH_PAGES = 512
#: Back-off delay when a batch found nothing reclaimable.
EMPTY_RETRY_DELAY = millis(40)


class Kswapd:
    """Background reclaim daemon."""

    def __init__(self, sim: Simulator, scheduler: Scheduler, manager: MemoryManager) -> None:
        self.sim = sim
        self.manager = manager
        self.thread: Thread = scheduler.spawn("kswapd0", SchedClass.FOREGROUND)
        self.active = False
        manager.kswapd = self

    def wake(self) -> None:
        """Wake the daemon if free memory is below the low watermark."""
        if self.active:
            return
        if not self.manager.state.below_low:
            return
        self.active = True
        self.manager.vmstat.kswapd_wakeups += 1
        if self.sim.tracing:
            self.sim.emit("kswapd.wake")
        self._balance()

    def _balance(self) -> None:
        state = self.manager.state
        if state.above_high:
            self.active = False
            if self.sim.tracing:
                self.sim.emit("kswapd.sleep")
            return
        plan = build_plan(
            self.manager.table.alive,
            BATCH_PAGES,
            allow_hot=True,
            efficiency=self.manager.current_hot_efficiency(),
        )
        self.manager.monitor.note_kswapd_activity()
        if plan.empty:
            # Nothing reclaimable at all: record a fruitless scan so the
            # pressure metric rises, poke lmkd, and retry shortly.
            self.manager.vmstat.record_scan(self.sim.now, BATCH_PAGES, 0)
            if self.manager.lmkd is not None:
                self.manager.lmkd.check()
            self.sim.schedule(EMPTY_RETRY_DELAY, self._balance, label="kswapd:retry")
            return

        def batch_done() -> None:
            # Pages free only after the scan/compress work is paid for:
            # reclaim bandwidth is CPU-bound, so allocation bursts can
            # outrun kswapd and fall into direct reclaim — the stall
            # mechanism behind §5.  (apply_plan clamps every movement to
            # what still exists, so a direct reclaim racing this batch
            # cannot double-free.)
            self.manager.apply_plan(plan)
            if self.manager.lmkd is not None:
                self.manager.lmkd.check()
            self._balance()

        self.thread.post(
            max(plan.cpu_cost_us, 1.0),
            on_complete=batch_done,
            label="kswapd:batch",
        )
