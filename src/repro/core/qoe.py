"""QoE metrics: frame drops, rendered FPS, opinion scores.

The opinion-score model maps frame-drop rates to the 1-5 scale used by
the paper's 99-participant survey (§4.3, Figure 10).  Raters compared a
reference clip (Normal pressure) with a degraded clip (Moderate): 5
means "no noticeable difference", 1 "very annoying".  We use a standard
exponential psychometric curve with inter-rater spread; the calibration
anchors the paper's operating point — a 3% vs 35% drop-rate pair should
yield mostly 1-2 ratings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

#: Sensitivity of the opinion curve to the extra drop rate.
DMOS_ALPHA = 5.0
#: Standard deviation of inter-rater noise on the continuous scale.
DMOS_RATER_SIGMA = 0.85


def expected_dmos(reference_drop_rate: float, degraded_drop_rate: float) -> float:
    """Expected differential opinion score for a pair of clips."""
    delta = max(0.0, degraded_drop_rate - reference_drop_rate)
    return 1.0 + 4.0 * math.exp(-DMOS_ALPHA * delta)


def sample_dmos_ratings(
    reference_drop_rate: float,
    degraded_drop_rate: float,
    n_raters: int,
    rng: np.random.Generator,
) -> List[int]:
    """Simulate ``n_raters`` discrete 1-5 ratings for a clip pair."""
    mean = expected_dmos(reference_drop_rate, degraded_drop_rate)
    continuous = rng.normal(mean, DMOS_RATER_SIGMA, size=n_raters)
    return [int(min(5, max(1, round(value)))) for value in continuous]


def dmos_histogram(ratings: Sequence[int]) -> Dict[int, int]:
    """Frequency of each rating 1..5 (Figure 10's bar heights)."""
    histogram = {score: 0 for score in range(1, 6)}
    for rating in ratings:
        if not 1 <= rating <= 5:
            raise ValueError(f"rating out of range: {rating}")
        histogram[rating] += 1
    return histogram


@dataclass(frozen=True)
class LinearQoeWeights:
    """Weights of the linear ABR QoE objective (Yin et al., SIGCOMM '15),
    extended with a frame-drop term for device-bottleneck studies."""

    rebuffer_penalty: float = 4.3   # per second of stall, in Mbps units
    switch_penalty: float = 1.0     # per Mbps of bitrate change
    drop_penalty: float = 6.0       # per unit drop rate, in Mbps units
    crash_penalty: float = 20.0     # flat, a crash ends the session


def linear_qoe(result, weights: LinearQoeWeights = LinearQoeWeights()) -> float:
    """The linear QoE score of a finished session.

    ``delivered bitrate − λ·switching − μ·rebuffering − drops − crash``,
    all in Mbps units.  The classic objective uses the *played* bitrate
    as the quality proxy; on a device bottleneck that credits frames
    that never rendered, so the utility here is the mean played bitrate
    scaled by the delivered share ``(1 − drop_rate)``, plus an explicit
    jank penalty.  Network-only ABR maximises the first three terms;
    the paper's point is that on memory-constrained devices the last
    two dominate — this objective makes that trade-off measurable.
    """
    bitrates = [kbps / 1000.0 for kbps in result.played_bitrates_kbps]
    if not bitrates:
        return -weights.crash_penalty if result.crashed else 0.0
    utility = (sum(bitrates) / len(bitrates)) * (1.0 - result.drop_rate)
    switching = sum(
        abs(b - a) for a, b in zip(bitrates, bitrates[1:])
    ) / len(bitrates)
    duration = max(result.duration_s, 1e-9)
    rebuffer = weights.rebuffer_penalty * result.rebuffer_s / duration
    drops = weights.drop_penalty * result.drop_rate
    crash = weights.crash_penalty if result.crashed else 0.0
    return utility - weights.switch_penalty * switching - rebuffer - drops - crash


@dataclass(frozen=True)
class QoeSummary:
    """Aggregate playback quality for one session."""

    drop_rate: float
    mean_rendered_fps: float
    rebuffer_ratio: float
    crashed: bool

    @property
    def mos(self) -> float:
        """Absolute MOS estimate from the drop rate (crash floors it)."""
        if self.crashed:
            return 1.0
        return expected_dmos(0.0, self.drop_rate)


def summarize(result) -> QoeSummary:
    """Build a :class:`QoeSummary` from a session result."""
    duration = max(result.duration_s, 1e-9)
    return QoeSummary(
        drop_rate=result.drop_rate,
        mean_rendered_fps=result.mean_rendered_fps,
        rebuffer_ratio=min(1.0, result.rebuffer_s / duration),
        crashed=result.crashed,
    )
