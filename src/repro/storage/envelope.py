"""Checksummed artifact envelopes and graceful-degradation reads.

An **envelope** is a tiny JSON sidecar published next to an artifact
(``<artifact>.env.json``) recording what the artifact claimed to be at
publish time::

    {"envelope": 1, "kind": "result-cache", "schema": "v2/ab12...",
     "sha256": "<hex digest of the artifact bytes>", "bytes": 1234}

The sidecar is itself published atomically *after* the artifact, so the
possible on-disk states after any crash are: neither file, artifact
without sidecar (indistinguishable from a legacy pre-envelope artifact),
or both — never a sidecar describing bytes that are not there.

:func:`verified_read` is the read half of the discipline: hash the
artifact, compare against the sidecar, and on any mismatch hand the
artifact to a :class:`Quarantine` — moved, never deleted, one warning
per store, counted — and report a miss so the caller recomputes.  A
checksum or schema problem is **never** raised to the caller; the only
exceptions out of this module are programming errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .atomic import StorageReport, publish_bytes

#: Version of the sidecar format itself (not of the artifact's schema).
ENVELOPE_VERSION = 1

#: Suffix appended to the artifact path to name its sidecar.
SIDECAR_SUFFIX = ".env.json"

#: Directory name (under a store root) where corrupt artifacts go.
QUARANTINE_DIR = "quarantine"


class IntegrityError(RuntimeError):
    """An artifact's bytes do not match its envelope.

    Internal to the storage layer: surfaces catch it (or use
    :func:`verified_read`, which converts it into quarantine + miss);
    it must never escape to simulation code.
    """


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sidecar_path(artifact: Union[str, Path]) -> Path:
    artifact = Path(artifact)
    return artifact.with_name(artifact.name + SIDECAR_SUFFIX)


@dataclass(frozen=True)
class Envelope:
    """The parsed contents of one artifact sidecar."""

    kind: str
    schema: str
    sha256: str
    size: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "envelope": ENVELOPE_VERSION,
            "kind": self.kind,
            "schema": self.schema,
            "sha256": self.sha256,
            "bytes": self.size,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Envelope":
        if payload.get("envelope") != ENVELOPE_VERSION:
            raise IntegrityError(
                f"unsupported envelope version {payload.get('envelope')!r}"
            )
        try:
            return cls(
                kind=str(payload["kind"]),
                schema=str(payload["schema"]),
                sha256=str(payload["sha256"]),
                size=int(payload["bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed envelope: {exc}") from exc


def write_sidecar(
    artifact: Union[str, Path],
    *,
    kind: str,
    schema: str,
    digest: str,
    size: int,
) -> Path:
    """Publish the envelope sidecar for an already-published artifact.

    Sidecars never take storage faults themselves (``surface=None``):
    the chaos scenarios corrupt artifacts and rely on the sidecar to
    catch it, so the sidecar is the trusted witness.
    """
    path = sidecar_path(artifact)
    envelope = Envelope(kind=kind, schema=schema, sha256=digest, size=size)
    publish_bytes(
        path,
        json.dumps(envelope.to_payload(), sort_keys=True).encode("utf-8"),
    )
    return path


def read_sidecar(artifact: Union[str, Path]) -> Optional[Envelope]:
    """Parse an artifact's sidecar; ``None`` when absent (legacy file).

    A sidecar that exists but cannot be parsed raises
    :class:`IntegrityError` — a present-but-garbled envelope is itself
    corruption, and the pair gets quarantined together.
    """
    path = sidecar_path(artifact)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise IntegrityError(f"unreadable sidecar {path}: {exc}") from exc
    try:
        payload = json.loads(raw.decode("utf-8"))
    except ValueError as exc:
        raise IntegrityError(f"garbled sidecar {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise IntegrityError(f"sidecar {path} is not a JSON object")
    return Envelope.from_payload(payload)


class Quarantine:
    """Where corrupt artifacts go to be inspected, not deleted.

    One instance per store.  The first quarantined artifact emits a
    single :class:`RuntimeWarning` naming the directory; subsequent
    ones are silent (a damaged store should not drown the run in
    warnings), but every move increments the shared
    :class:`~repro.storage.atomic.StorageReport`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        label: str,
        report: Optional[StorageReport] = None,
    ) -> None:
        self.root = Path(root)
        self.label = label
        self.report = report if report is not None else StorageReport()
        self._warned = False

    @property
    def directory(self) -> Path:
        return self.root / QUARANTINE_DIR

    @property
    def count(self) -> int:
        return self.report.quarantined

    def take(self, artifact: Path, reason: str) -> None:
        """Move ``artifact`` (and its sidecar, if any) into quarantine."""
        self.directory.mkdir(parents=True, exist_ok=True)
        moved = False
        for victim in (artifact, sidecar_path(artifact)):
            if not victim.exists():
                continue
            dest = self.directory / victim.name
            with suppress(OSError):
                os.replace(victim, dest)
                moved = True
        if not moved:
            return
        self.report.quarantined += 1
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"{self.label}: quarantined corrupt artifact "
                f"{artifact.name} ({reason}); moved to {self.directory}",
                RuntimeWarning,
                stacklevel=3,
            )


def verified_read(
    artifact: Union[str, Path],
    *,
    quarantine: Quarantine,
    expected_schema: Optional[str] = None,
) -> Optional[bytes]:
    """Read an artifact's bytes iff they match their envelope.

    Returns the verified payload, or ``None`` for every degraded case:
    artifact missing, checksum mismatch (quarantined), garbled sidecar
    (quarantined), schema drift (quarantined — an old-format artifact
    is a miss, not an error).  An artifact with **no** sidecar is
    returned as-is with ``legacy_reads`` incremented; the caller's own
    parse-validation is the only line of defence for those, exactly as
    before this layer existed.
    """
    artifact = Path(artifact)
    report = quarantine.report
    try:
        data = artifact.read_bytes()
    except FileNotFoundError:
        return None
    except OSError:
        return None
    try:
        envelope = read_sidecar(artifact)
    except IntegrityError as exc:
        quarantine.take(artifact, str(exc))
        return None
    if envelope is None:
        report.legacy_reads += 1
        return data
    if envelope.size != len(data) or envelope.sha256 != sha256_hex(data):
        quarantine.take(
            artifact,
            f"checksum mismatch (have {len(data)} bytes, "
            f"envelope says {envelope.size})",
        )
        return None
    if expected_schema is not None and envelope.schema != expected_schema:
        quarantine.take(
            artifact,
            f"schema drift ({envelope.schema!r} != {expected_schema!r})",
        )
        return None
    report.verified += 1
    return data
