"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each ablation switches one
mechanism off (or swaps a policy) and shows its contribution to the
end-to-end result.

1. **Memory-aware ABR on/off** — the §6 proposal quantified.
2. **mmcqd priority** — what §5 blames: demote the I/O daemon to the
   foreground class and the preemption interference disappears.
3. **zRAM** — disable the compressed swap (tiny disksize) and pressure
   kills arrive much sooner.
4. **More CPU (the §7 OEM discussion)** — the same 1 GB memory with
   more/faster cores masks part of the pressure-induced drops.
"""

import statistics

from repro.core.session import StreamingSession
from repro.device.device import Device
from repro.device.profiles import generic_profile, nokia1_profile
from repro.experiments import adaptation_experiments
from repro.experiments.trace_experiments import is_video_thread, profiled_run
from repro.sched.scheduler import SchedClass
from repro.video.encoding import default_video
from .conftest import print_header


def test_ablation_memory_aware_abr(benchmark):
    outcome = benchmark.pedantic(
        adaptation_experiments.memory_aware_comparison,
        kwargs={"duration_s": 30.0, "repetitions": 3},
        rounds=1, iterations=1,
    )
    print_header("Ablation — memory-aware ABR vs fixed 60 FPS (Moderate)")
    for name, row in outcome.items():
        print(
            f"  {name:13s} drop {row['mean_drop_rate'] * 100:5.1f}%  "
            f"crash {row['crash_rate'] * 100:5.1f}%  "
            f"rendered {row['mean_rendered_fps']:5.1f} FPS"
        )
    fixed, aware = outcome["fixed"], outcome["memory_aware"]
    assert (
        aware["mean_drop_rate"] < fixed["mean_drop_rate"]
        or aware["crash_rate"] < fixed["crash_rate"]
    )


def test_ablation_mmcqd_priority(benchmark):
    """Demoting mmcqd from the IO class removes its mid-slice
    preemptions of video threads (the interference §5 measures)."""

    def run_pair():
        stock = profiled_run("moderate", duration_s=20.0, seed=51)
        demoted = profiled_run(
            "moderate", duration_s=20.0, seed=51, demote_mmcqd=True
        )
        return stock, demoted

    stock, demoted = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_header("Ablation — mmcqd scheduling priority")
    for name, run in (("IO class (stock)", stock), ("demoted", demoted)):
        stats = run.mmcqd_preemptions()
        count = stats.count if stats else 0
        wait = stats.total_victim_wait_s if stats else 0.0
        print(f"  {name:18s} preemptions: {count:4d}  "
              f"victim wait {wait:6.3f} s  drop {run.result.drop_rate * 100:5.1f}%")
    stock_stats = stock.mmcqd_preemptions()
    demoted_stats = demoted.mmcqd_preemptions()
    stock_count = stock_stats.count if stock_stats else 0
    demoted_count = demoted_stats.count if demoted_stats else 0
    assert stock_count > 0, "stock mmcqd never preempted video threads"
    assert demoted_count == 0, "a same-class thread cannot preempt mid-slice"


def test_ablation_zram(benchmark):
    """Shrinking the zRAM disksize disables compressed swap: anonymous
    memory becomes unreclaimable, swap traffic collapses, and the
    killer has to do the work instead."""

    def run_with_disksize(fraction: float):
        profile = nokia1_profile()
        device = Device(profile, seed=53)
        device.memory.state.zram_disksize = round(
            device.memory.state.total_pages * fraction
        )
        device.boot()
        session = StreamingSession(
            device=device, asset=default_video(duration_s=20.0),
            resolution="480p", frame_rate=60, pressure="moderate",
            duration_s=20.0,
        )
        session.run()
        stat = device.memory.vmstat
        return {
            "kills": stat.lmkd_kills + stat.oom_kills,
            "pswpout": stat.pswpout,
        }

    with_zram, without_zram = benchmark.pedantic(
        lambda: (run_with_disksize(0.5), run_with_disksize(0.02)),
        rounds=1, iterations=1,
    )
    print_header("Ablation — zRAM disksize")
    print(f"  zram 50% of RAM: {with_zram['kills']} kills, "
          f"{with_zram['pswpout']} pages swapped")
    print(f"  zram  2% of RAM: {without_zram['kills']} kills, "
          f"{without_zram['pswpout']} pages swapped")
    # Compressed swap absorbs most of the pressure when available;
    # without it, swap traffic collapses and reclaim must fall back to
    # file eviction and kills (kill counts vary run to run because the
    # pressure floor is reached along a different path).
    assert with_zram["pswpout"] > without_zram["pswpout"] * 2
    assert with_zram["kills"] > 0 and without_zram["kills"] > 0


def test_ablation_more_cpu(benchmark):
    """§7: the same RAM with more CPU masks pressure-induced drops."""

    def drops(profile) -> float:
        rates = []
        for seed in (61, 62):
            device = Device(profile, seed=seed).boot()
            session = StreamingSession(
                device=device, asset=default_video(duration_s=20.0),
                resolution="720p", frame_rate=60, pressure="moderate",
                duration_s=20.0,
            )
            rates.append(session.run().drop_rate)
        return statistics.mean(rates)

    stock, beefy = benchmark.pedantic(
        lambda: (
            drops(nokia1_profile()),
            drops(generic_profile("nokia1-octa", ram_mb=1024, n_cores=8,
                                  freq_ghz=1.8, decode_cost_multiplier=1.0)),
        ),
        rounds=1, iterations=1,
    )
    print_header("Ablation — CPU headroom at 1 GB RAM (720p@60, Moderate)")
    print(f"  quad 1.1 GHz: drop {stock * 100:5.1f}%")
    print(f"  octa 1.8 GHz: drop {beefy * 100:5.1f}%")
    assert beefy <= stock


def test_ablation_kswapd_pinning(benchmark):
    """§7: pinning kswapd to one core removes its migrations; video
    threads keep their cores to themselves."""

    def run_with(pinned: bool):
        device = Device(nokia1_profile(), seed=57, pin_kswapd=pinned)
        device.boot()
        session = StreamingSession(
            device=device, asset=default_video(duration_s=20.0),
            resolution="480p", frame_rate=60, pressure="moderate",
            duration_s=20.0,
        )
        result = session.run()
        return {
            "migrations": device.kswapd.thread.migrations,
            "drop_rate": result.drop_rate,
            "crashed": result.crashed,
        }

    stock, pinned = benchmark.pedantic(
        lambda: (run_with(False), run_with(True)), rounds=1, iterations=1,
    )
    print_header("Ablation — kswapd core pinning (§7)")
    for name, row in (("free migration", stock), ("pinned", pinned)):
        print(f"  {name:15s} kswapd migrations {row['migrations']:5d}  "
              f"drop {row['drop_rate'] * 100:5.1f}%  crashed {row['crashed']}")
    assert pinned["migrations"] == 0
    assert stock["migrations"] > 0


def test_ablation_abr_joint_bottleneck(benchmark):
    """Network-only ABR vs memory-aware wrapper when the network is fat
    but the device is memory-pressured (the paper's central argument)."""
    from repro.core.abr import MemoryAwareAbr, RateBasedAbr
    from repro.video.encoding import GENRES, VideoAsset
    from repro.video.network import TraceLink

    def run(abr):
        asset = VideoAsset(
            "Dubai", GENRES["travel"], 30.0,
            resolutions=("240p", "360p", "480p", "720p", "1080p"),
            frame_rates=(24, 48, 60),
        )
        session = StreamingSession(
            device="nokia1", asset=asset, resolution="360p", frame_rate=60,
            pressure="moderate", duration_s=30.0, seed=11, abr=abr,
        )
        session.player.server.link = TraceLink([(0.0, 40.0)], rtt_ms=20.0)
        return session.run()

    network_only, memory_aware = benchmark.pedantic(
        lambda: (run(RateBasedAbr()), run(MemoryAwareAbr(inner=RateBasedAbr()))),
        rounds=1, iterations=1,
    )
    print_header("Ablation — ABR under a joint network+memory bottleneck")
    for name, result in (("rate-based only", network_only),
                         ("rate + memory-aware", memory_aware)):
        print(f"  {name:20s} drop {result.drop_rate * 100:5.1f}%  "
              f"crashed {result.crashed}")
    better = (
        memory_aware.drop_rate < network_only.drop_rate
        or (network_only.crashed and not memory_aware.crashed)
    )
    assert better
