"""The storage I/O queue daemon (*mmcqd*).

mmcqd manages queued I/O operations on eMMC storage.  Two properties
matter for the paper's findings (§2, §5):

* it runs in a **strictly higher scheduling class** than foreground
  processes, so every burst of I/O preempts video threads; and
* its CPU time grows with I/O volume — under thrashing, refaults and
  writeback make it one of the busiest threads on the device (the paper
  measured 0.4 s → 4.6 s of running time from Normal to Moderate).

Requests are served FIFO.  Each request costs mmcqd CPU time (queue and
command management, interrupt handling) and then waits out the device
service time before the completion callback fires.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional

from ..sched.scheduler import SchedClass, Scheduler, Thread
from ..sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - avoids a package-import cycle
    from ..device.storage import StorageDevice

#: CPU cost (reference us) to drive one request through the queue.
REQUEST_CPU_BASE_US = 150.0
#: Additional CPU per 4 KiB page moved (scatter/gather + completion IRQ).
REQUEST_CPU_PER_PAGE_US = 12.0


@dataclass
class IoRequest:
    kind: str                       # "read" | "write"
    pages: int
    on_complete: Optional[Callable[[], None]]


class Mmcqd:
    """The mmcqd kernel thread plus its request queue."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: Scheduler,
        storage: "StorageDevice",
    ) -> None:
        self.sim = sim
        self.storage = storage
        self.thread: Thread = scheduler.spawn("mmcqd", SchedClass.IO, process=None)
        self._queue: Deque[IoRequest] = deque()
        self._busy = False
        self.completed_requests = 0

    # ------------------------------------------------------------------
    def submit_read(self, pages: int, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Queue a read of ``pages`` pages (e.g. a major-fault refault)."""
        self._submit(IoRequest("read", max(1, pages), on_complete))

    def submit_write(self, pages: int, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Queue a writeback of ``pages`` dirty pages."""
        self._submit(IoRequest("write", max(1, pages), on_complete))

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    # ------------------------------------------------------------------
    def _submit(self, request: IoRequest) -> None:
        self._queue.append(request)
        if not self._busy:
            self._busy = True
            self._issue_next()

    def _issue_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        request = self._queue.popleft()
        cpu_us = REQUEST_CPU_BASE_US + REQUEST_CPU_PER_PAGE_US * request.pages
        self.thread.post(
            cpu_us,
            on_complete=lambda: self._start_transfer(request),
            label=f"mmcqd:{request.kind}",
        )

    def _start_transfer(self, request: IoRequest) -> None:
        if request.kind == "read":
            service = self.storage.read_time(request.pages)
        else:
            service = self.storage.write_time(request.pages)
        self.sim.schedule(service, self._finish, request, label="mmcqd:transfer")

    def _finish(self, request: IoRequest) -> None:
        self.completed_requests += 1
        if self.sim.tracing:
            self.sim.emit("io.complete", kind=request.kind, pages=request.pages)
        if request.on_complete is not None:
            request.on_complete()
        self._issue_next()
