"""In-simulation trace recording (Perfetto analog).

The recorder subscribes to the engine's instrumentation topics and
stores what Perfetto would capture from ftrace on a real device:

* thread state transitions (``sched.state``),
* preemption events with victim and victor (``sched.preempt``),
* core migrations (``sched.migrate``),
* named counter tracks sampled periodically (free memory, rendered
  FPS, per-thread CPU utilization, ...).

Because the simulator records its own ground-truth schedule, the §5
analyses computed from these traces are exact rather than sampled.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from ..sched.scheduler import Thread
from ..sched.states import ThreadState
from ..sim.clock import Time, seconds
from ..sim.engine import Simulator
from ..sim.periodic import PeriodicService

#: A state transition: (time, new_state).
Transition = Tuple[Time, ThreadState]
#: A displacement: (time, victim name, victor name, core index).
Preemption = Tuple[Time, str, str, int]


class TraceRecorder:
    """Records scheduling events and counter tracks for later analysis."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.start_time: Time = sim.now
        self.transitions: Dict[str, List[Transition]] = defaultdict(list)
        #: True mid-slice preemptions by a higher scheduling class.
        self.preemptions: List[Preemption] = []
        #: Involuntary quantum rotations within the same class.
        self.rotations: List[Preemption] = []
        self.migrations: Dict[str, int] = defaultdict(int)
        self.counters: Dict[str, List[Tuple[Time, float]]] = defaultdict(list)
        self._counter_fns: List[Tuple[str, Callable[[], float]]] = []
        self._sampling = False
        self._initial_states: Dict[str, ThreadState] = {}
        sim.on("sched.state", self._on_state)
        sim.on("sched.preempt", self._on_preempt)
        sim.on("sched.migrate", self._on_migrate)

    # ------------------------------------------------------------------
    # Event capture
    # ------------------------------------------------------------------
    def _on_state(self, time: Time, thread: Thread, old: ThreadState, new: ThreadState) -> None:
        name = thread.name
        if name not in self._initial_states:
            self._initial_states[name] = old
        self.transitions[name].append((time, new))

    def _on_preempt(
        self,
        time: Time,
        victim: Thread,
        victor: Optional[Thread],
        core: int,
        kind: str = "preempt",
    ) -> None:
        victor_name = victor.name if victor is not None else "?"
        record = (time, victim.name, victor_name, core)
        if kind == "preempt":
            self.preemptions.append(record)
        else:
            self.rotations.append(record)

    def _on_migrate(self, time: Time, thread: Thread, src: int, dst: int) -> None:
        self.migrations[thread.name] += 1

    # ------------------------------------------------------------------
    # Counter tracks
    # ------------------------------------------------------------------
    def track_counter(self, name: str, fn: Callable[[], float]) -> None:
        """Register a counter sampled on every sampling tick."""
        self._counter_fns.append((name, fn))

    def start_sampling(self, period: Time = seconds(0.5)) -> None:
        """Begin periodic sampling of all registered counters."""
        if self._sampling:
            return
        self._sampling = True
        PeriodicService(
            self.sim, period, self._sample, label="trace:sample"
        ).fire()  # first sample lands inline

    def _sample(self) -> None:
        for name, fn in self._counter_fns:
            self.counters[name].append((self.sim.now, float(fn())))

    # ------------------------------------------------------------------
    # Interval reconstruction
    # ------------------------------------------------------------------
    def intervals(
        self, thread_name: str, until: Optional[Time] = None
    ) -> List[Tuple[Time, Time, ThreadState]]:
        """(start, end, state) intervals for one thread, tiling
        [start_time, until]."""
        if until is None:
            until = self.sim.now
        events = self.transitions.get(thread_name, [])
        initial = self._initial_states.get(thread_name, ThreadState.SLEEPING)
        result: List[Tuple[Time, Time, ThreadState]] = []
        current_state = initial
        current_start = self.start_time
        for time, new_state in events:
            if time > until:
                break
            if time > current_start:
                result.append((current_start, time, current_state))
            current_state = new_state
            current_start = time
        if until > current_start:
            result.append((current_start, until, current_state))
        return result

    def thread_names(self) -> List[str]:
        return sorted(self.transitions.keys())
