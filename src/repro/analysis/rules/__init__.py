"""Rule registry for ``repro lint``.

Rules are grouped by family — determinism and robustness (REP1xx),
contracts (REP2xx), typing gate (REP3xx) — and instantiated fresh per
run (rules
are allowed to keep per-run state).  ``REP001`` (syntax error) is
reported by the engine itself and has no class here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..engine import Rule
from .boundaries import BOUNDARY_RULES
from .contracts import CONTRACT_RULES
from .determinism import DETERMINISM_RULES
from .robustness import ROBUSTNESS_RULES
from .schema_rules import SCHEMA_RULES
from .taint_rules import TAINT_RULES
from .typing_rules import TYPING_RULES

ALL_RULE_CLASSES: Sequence[Type[Rule]] = (
    *DETERMINISM_RULES,
    *TAINT_RULES,
    *BOUNDARY_RULES,
    *ROBUSTNESS_RULES,
    *CONTRACT_RULES,
    *SCHEMA_RULES,
    *TYPING_RULES,
)


def rule_catalog() -> Dict[str, Type[Rule]]:
    """Rule id -> class, in registry order."""
    catalog: Dict[str, Type[Rule]] = {}
    for cls in ALL_RULE_CLASSES:
        if cls.id in catalog:
            raise ValueError(f"duplicate rule id {cls.id}")
        catalog[cls.id] = cls
    return catalog


def build_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the rule set, optionally restricted to ``only`` ids."""
    catalog = rule_catalog()
    if only is None:
        return [cls() for cls in catalog.values()]
    selected: List[Rule] = []
    for rule_id in only:
        normalized = rule_id.strip().upper()
        if normalized not in catalog:
            known = ", ".join(sorted(catalog))
            raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
        selected.append(catalog[normalized]())
    return selected
