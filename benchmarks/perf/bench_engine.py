"""Engine microbenchmarks: event queue, run loop, emit hot path.

Run directly (``python -m benchmarks.perf.bench_engine``) or through
``benchmarks.perf.run`` which also records the numbers to a
``BENCH_<date>.json``.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.engine import Simulator
from repro.sim.events import EventQueue

from .harness import ops_per_sec


def _noop() -> None:
    pass


def queue_push_pop(n: int) -> None:
    """Push ``n`` events at increasing times, then drain them."""
    queue = EventQueue()
    push = queue.push
    for i in range(n):
        push(i, _noop)
    pop = queue.pop
    while pop() is not None:
        pass


def queue_push_cancel_pop(n: int) -> None:
    """Push ``n`` events, cancel half, then drain (lazy deletion path)."""
    queue = EventQueue()
    events = [queue.push(i, _noop) for i in range(n)]
    for event in events[::2]:
        event.cancel()
    while queue.pop() is not None:
        pass


def run_loop(n: int) -> None:
    """Fire ``n`` pre-scheduled events through ``Simulator.run``."""
    sim = Simulator()
    for i in range(n):
        sim.schedule(i, _noop)
    sim.run()


def event_chain(n: int) -> None:
    """``n`` events each scheduling the next (schedule inside callbacks)."""
    sim = Simulator()
    remaining = [n]

    def step() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(1, step)

    sim.schedule(0, step)
    sim.run()


def emit_unsubscribed(n: int) -> None:
    """``n`` emits on a topic nobody listens to (the common case)."""
    sim = Simulator()
    emit = sim.emit
    for _ in range(n):
        emit("bench.topic", value=1, other=2)


def emit_subscribed(n: int) -> None:
    """``n`` emits delivered to a single subscriber."""
    sim = Simulator()
    sink = []
    sim.on("bench.topic", lambda time, value, other: sink.append(value))
    emit = sim.emit
    for _ in range(n):
        emit("bench.topic", value=1, other=2)


#: name -> (fn, default op count, quick op count)
MICROBENCHES = {
    "queue_push_pop": (queue_push_pop, 200_000, 20_000),
    "queue_push_cancel_pop": (queue_push_cancel_pop, 200_000, 20_000),
    "run_loop": (run_loop, 200_000, 20_000),
    "event_chain": (event_chain, 100_000, 10_000),
    "emit_unsubscribed": (emit_unsubscribed, 500_000, 50_000),
    "emit_subscribed": (emit_subscribed, 200_000, 20_000),
}


def run(quick: bool = False) -> Dict[str, float]:
    """Run every microbench; return {name: ops/sec}."""
    results = {}
    for name, (fn, n, n_quick) in MICROBENCHES.items():
        count = n_quick if quick else n
        results[name] = round(ops_per_sec(fn, count, repeats=2 if quick else 5))
    return results


if __name__ == "__main__":
    for name, rate in run().items():
        print(f"{name:24s} {rate:>12,.0f} ops/s")
