"""§3 user-study experiments: Figures 1-6 and the Table 1 roll-up.

Wraps the population generator and analysis pipeline into one function
per paper artefact.  ``scale`` shrinks observation lengths (and the
10-hour cleaning threshold proportionally) so benches can trade a few
percent of statistical stability for speed; ``scale=1.0`` reproduces
the full ~9950-hour study.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..study import analysis
from ..study.generator import PopulationConfig, generate_population
from ..study.signalcapturer import DeviceLog
from ..study.survey import DmosSurvey, UsageSurvey, run_dmos_survey, run_usage_survey


def build_study(
    scale: float = 1.0,
    seed: int = 0,
    n_users: int = 80,
    jobs: Optional[int] = None,
) -> List[DeviceLog]:
    """Generate the population and apply the paper's cleaning step.

    ``jobs`` parallelizes device generation (see
    :func:`repro.study.generator.generate_population`).
    """
    population = generate_population(
        PopulationConfig(n_users=n_users, hours_scale=scale, seed=seed),
        jobs=jobs,
    )
    return analysis.clean(population, min_interactive_hours=10.0 * scale)


def fig1_usage_heatmap(seed: int = 0) -> UsageSurvey:
    """Figure 1: activity-frequency and multitasking heatmaps."""
    return run_usage_survey(n_respondents=48, seed=seed)


def fig2_utilization_cdf(devices: Sequence[DeviceLog]) -> List[Tuple[float, float]]:
    """Figure 2: CDF of per-device median RAM utilization."""
    return analysis.utilization_cdf(devices)


def fig3_signal_rates(
    devices: Sequence[DeviceLog],
) -> List["analysis.SignalRates"]:
    """Figure 3: per-device signals/hour by level versus RAM size."""
    return analysis.signal_rates(devices)


def fig4_time_in_states(devices: Sequence[DeviceLog]) -> List[Dict[str, Any]]:
    """Figure 4: fraction of time per pressure state versus RAM size."""
    return analysis.high_pressure_time_fractions(devices)


def fig5_available_by_state(
    devices: Sequence[DeviceLog], count: int = 5
) -> Dict[str, Dict[str, Any]]:
    """Figure 5: available-memory distributions per state for the
    devices spending the most time under pressure."""
    return {
        log.info.device_id: analysis.available_memory_by_state(log)
        for log in analysis.top_pressure_devices(devices, count)
    }


def fig6_transitions(devices: Sequence[DeviceLog]) -> Dict[str, Dict[str, Any]]:
    """Figure 6: next-state percentages and dwell quartiles."""
    return analysis.transition_stats(devices)


def table1_summary(devices: Sequence[DeviceLog]) -> Dict[str, float]:
    """Table 1's §3 rows, computed from the logs."""
    return analysis.study_summary(devices)


def fig10_dmos(
    reference_drop_rate: float = 0.03,
    degraded_drop_rate: float = 0.35,
    seed: int = 0,
) -> DmosSurvey:
    """Figure 10: the 99-rater differential MOS histogram.

    Defaults to the paper's measured operating point (3% vs 35% drops);
    the bench version feeds drop rates measured from actual simulated
    sessions instead.
    """
    return run_dmos_survey(
        reference_drop_rate, degraded_drop_rate, n_raters=99, seed=seed
    )
