"""Kernel memory-management counters (``/proc/vmstat`` analog).

The low-memory killer's pressure metric is computed from a sliding
window over these counters exactly as §2 of the paper describes:
``P = (1 - R/S) * 100`` where ``R`` is pages reclaimed and ``S`` pages
scanned in the recent window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Tuple

from ..sim.clock import Time, seconds


@dataclass
class VmStat:
    """Monotonic counters updated by the reclaim and fault paths."""

    pgscan: int = 0          # pages examined by reclaim
    pgsteal: int = 0         # pages actually reclaimed
    pswpout: int = 0         # anon pages compressed to zRAM
    pswpin: int = 0          # anon pages decompressed from zRAM
    pgfault: int = 0         # minor faults (zRAM refaults)
    pgmajfault: int = 0      # major faults (disk refaults)
    allocstall: int = 0      # direct-reclaim entries
    pgwriteback: int = 0     # dirty file pages written back
    kswapd_wakeups: int = 0
    lmkd_kills: int = 0
    oom_kills: int = 0

    _window: Deque[Tuple[Time, int, int]] = field(default_factory=deque, repr=False)
    #: Running sums over ``_window`` — integer arithmetic, so they are
    #: exactly the re-summed values without walking the deque each poll.
    _window_scanned: int = field(default=0, repr=False)
    _window_reclaimed: int = field(default=0, repr=False)

    def record_scan(self, now: Time, scanned: int, reclaimed: int) -> None:
        """Record one reclaim batch for the windowed pressure metric."""
        self.pgscan += scanned
        self.pgsteal += reclaimed
        self._window.append((now, scanned, reclaimed))
        self._window_scanned += scanned
        self._window_reclaimed += reclaimed

    def pressure(self, now: Time, window: Time = seconds(1.0)) -> float:
        """The lmkd pressure metric over the trailing ``window`` ticks.

        ``P = (1 - reclaimed/scanned) * 100``; 0 when nothing was
        scanned recently (no reclaim activity means no memory pressure).
        """
        cutoff = now - window
        win = self._window
        while win and win[0][0] < cutoff:
            _, scanned, reclaimed = win.popleft()
            self._window_scanned -= scanned
            self._window_reclaimed -= reclaimed
        scanned = self._window_scanned
        if scanned == 0:
            return 0.0
        reclaimed = self._window_reclaimed
        if reclaimed > scanned:
            reclaimed = scanned
        return (1.0 - reclaimed / scanned) * 100.0
