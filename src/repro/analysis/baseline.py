"""Baseline file handling: grandfathered findings.

``lint-baseline.json`` mirrors the ``--update-golden`` idiom from the
validation subsystem: the file records the findings that existed when a
rule was introduced, ``repro lint`` fails only on findings *not* in it,
and ``repro lint --update-baseline`` refreshes it deliberately (the
diff then shows exactly which debts were added or paid down).

Entries are keyed by finding fingerprint (rule + path + message — line
numbers excluded so edits elsewhere in a file do not un-baseline a
finding) with a count, so two identical findings in one file need two
baseline slots: fixing one of them keeps the run green, adding a third
fails it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..storage import publish_bytes
from .engine import Finding

BASELINE_VERSION = 1
#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = Path("lint-baseline.json")


def load_baseline_entries(path: Path) -> List[Dict[str, Any]]:
    """The raw entry list, with per-entry rule/path/message metadata.

    A missing file is an empty baseline; an unsupported version raises
    (silently ignoring it would un-grandfather everything at once).
    """
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    payload = json.loads(text)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path} (expected {BASELINE_VERSION})"
        )
    return list(payload.get("findings", []))


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> allowed count.  A missing file is an empty baseline."""
    allowed: Dict[str, int] = {}
    for entry in load_baseline_entries(path):
        allowed[entry["fingerprint"]] = (
            allowed.get(entry["fingerprint"], 0) + int(entry.get("count", 1))
        )
    return allowed


def _entries_from_findings(
    findings: Sequence[Finding],
) -> List[Dict[str, Any]]:
    grouped: Dict[str, Tuple[Finding, int]] = {}
    for finding in findings:
        fingerprint = finding.fingerprint
        if fingerprint in grouped:
            first, count = grouped[fingerprint]
            grouped[fingerprint] = (first, count + 1)
        else:
            grouped[fingerprint] = (finding, 1)
    return [
        {
            "fingerprint": fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
            "count": count,
        }
        for fingerprint, (finding, count) in sorted(grouped.items())
    ]


def _write_entries(entries: List[Dict[str, Any]], path: Path) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered `repro lint` findings. Refresh deliberately "
            "with `repro lint --update-baseline` and justify additions "
            "in the same commit (see docs/static-analysis.md)."
        ),
        "findings": sorted(entries, key=lambda e: str(e["fingerprint"])),
    }
    # Atomic publish, no sidecar: the baseline is a committed repo file
    # whose integrity is git's job; atomicity just keeps a Ctrl-C during
    # --update-baseline from leaving a half-written file.
    publish_bytes(
        path,
        (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Record ``findings`` as the new grandfathered set (full rewrite)."""
    _write_entries(_entries_from_findings(findings), path)


@dataclass
class BaselineUpdate:
    """What ``--update-baseline`` did, for reporting."""

    old_total: int = 0               #: fingerprint slots before
    new_total: int = 0               #: fingerprint slots after
    pruned: List[str] = field(default_factory=list)  #: dead-file paths dropped
    kept_outside: int = 0            #: entries preserved outside lint scope

    @property
    def shrank(self) -> bool:
        return self.new_total < self.old_total


def update_baseline(
    findings: Sequence[Finding],
    path: Path,
    linted_rels: Set[str],
    root: Optional[Path] = None,
) -> BaselineUpdate:
    """Merge ``findings`` into the baseline instead of rewriting it.

    The old behaviour — rewrite from the current findings — silently
    dropped every grandfathered entry outside the linted paths, so
    ``repro lint src/repro/sim --update-baseline`` would nuke the debts
    of every other package.  The merge keeps entries for files outside
    ``linted_rels`` untouched, *except* entries whose source file no
    longer exists on disk: those are stale debt for deleted code and
    are pruned (and reported, so a shrinking baseline is always
    explained).
    """
    resolved_root = root if root is not None else Path.cwd()
    old_entries = load_baseline_entries(path)
    kept: List[Dict[str, Any]] = []
    update = BaselineUpdate()
    pruned_paths: Set[str] = set()
    for entry in old_entries:
        update.old_total += int(entry.get("count", 1))
        entry_path = str(entry.get("path", ""))
        if entry_path in linted_rels:
            continue  # superseded by this run's findings for that file
        if not (resolved_root / entry_path).exists():
            pruned_paths.add(entry_path)
            continue
        kept.append(entry)
        update.kept_outside += int(entry.get("count", 1))
    new_entries = _entries_from_findings(findings) + kept
    update.pruned = sorted(pruned_paths)
    update.new_total = sum(int(e.get("count", 1)) for e in new_entries)
    _write_entries(new_entries, path)
    return update


def split_baselined(
    findings: Sequence[Finding], allowed: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined), consuming counts."""
    budget = Counter(allowed)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint
        if budget[fingerprint] > 0:
            budget[fingerprint] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
