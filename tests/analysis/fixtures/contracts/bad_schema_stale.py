"""REP204 fixture: SessionResult changed but the fingerprint did not."""

from dataclasses import dataclass

SCHEMA_VERSION = 3
SCHEMA_FINGERPRINT = "0000000000000000"  # stale on purpose


@dataclass
class SessionResult:
    device_name: str
    frames_rendered: int
    crashed: bool
