"""Stateful property test: random operation sequences against the
memory manager never corrupt the books.

A hypothesis-driven interpreter replays arbitrary interleavings of the
operations real components perform — allocations (both kinds), frees,
working-set touches, kills, and time advancement — and checks the
global accounting invariant plus the per-process reconciliation after
every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import Device
from repro.device.profiles import generic_profile
from repro.kernel import OomAdj
from repro.sched import SchedClass
from repro.sim import millis


operation = st.one_of(
    st.tuples(st.just("alloc_anon"), st.integers(0, 4), st.integers(1, 4000),
              st.floats(0.0, 1.0)),
    st.tuples(st.just("alloc_file"), st.integers(0, 4), st.integers(1, 4000),
              st.floats(0.0, 1.0)),
    st.tuples(st.just("release"), st.integers(0, 4), st.integers(1, 4000),
              st.sampled_from(["anon", "file"])),
    st.tuples(st.just("touch"), st.integers(0, 4), st.integers(1, 2000),
              st.none()),
    st.tuples(st.just("kill"), st.integers(0, 4), st.just(0), st.none()),
    st.tuples(st.just("advance"), st.just(0), st.integers(1, 500), st.none()),
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(operation, min_size=5, max_size=50))
def test_random_operation_sequences_preserve_invariants(ops):
    device = Device(generic_profile("fuzz", ram_mb=512, n_cores=2), seed=5)
    device.boot()
    manager = device.memory
    processes = []
    for i in range(5):
        proc = manager.spawn_process(f"fuzz{i}", OomAdj.FOREGROUND + i * 100)
        thread = manager.spawn_thread(proc, f"fuzz{i}.t", SchedClass.FOREGROUND)
        processes.append((proc, thread))

    for op, index, amount, extra in ops:
        proc, thread = processes[index % len(processes)]
        if op == "alloc_anon" and proc.alive:
            manager.request_pages(proc, thread, amount, kind="anon",
                                  hot_fraction=extra)
        elif op == "alloc_file" and proc.alive:
            manager.request_pages(proc, thread, amount, kind="file",
                                  hot_fraction=extra)
        elif op == "release" and proc.alive:
            manager.release_pages(proc, amount, kind=extra)
        elif op == "touch" and proc.alive:
            manager.touch(proc, thread, amount)
        elif op == "kill":
            manager.kill_process(proc, "lmkd")
        elif op == "advance":
            device.run(until=device.sim.now + millis(amount))
        manager.check_consistency()

    # Drain everything in flight, then re-verify.
    device.run(until=device.sim.now + millis(2000))
    manager.check_consistency()
