#!/usr/bin/env python3
"""A video provider's fleet dashboard, with memory-pressure visibility.

Simulates a small fleet of streaming sessions — mixed devices, mixed
memory states, one throttled-network cohort — each uploading a QoE
beacon that *includes OnTrimMemory signal counts* (what §7 asks
providers to start collecting).  The provider-side report then shows
why that matters: among sessions whose network was fine, nearly all
bad-QoE sessions line up with memory pressure.

Usage::

    python examples/provider_telemetry.py
"""

from repro.core.session import StreamingSession
from repro.core.telemetry import TelemetryCollector, beacon_from_result
from repro.video.network import Link

FLEET = [
    # (device, resolution, fps, pressure, link, n sessions)
    ("nexus6p", "720p", 30, "normal", None, 3),
    ("nexus5", "720p", 60, "normal", None, 3),
    ("nexus5", "1080p", 60, "critical", None, 2),
    ("nokia1", "480p", 60, "normal", None, 2),
    ("nokia1", "480p", 60, "moderate", None, 3),
    ("nokia1", "720p", 30, "moderate", None, 2),
    # A genuinely network-limited cohort (no memory pressure).
    ("nexus5", "480p", 30, "normal", Link(bandwidth_mbps=1.2, rtt_ms=40), 2),
]


def main() -> None:
    collector = TelemetryCollector()
    for device, resolution, fps, pressure, link, count in FLEET:
        for i in range(count):
            session = StreamingSession(
                device=device, resolution=resolution, frame_rate=fps,
                pressure=pressure, duration_s=20.0, seed=100 + i * 13,
            )
            if link is not None:
                session.player.server.link = link
            result = session.run()
            collector.ingest(beacon_from_result(
                result,
                device_ram_mb=session.device.profile.ram_mb,
                mean_throughput_mbps=session.player.estimated_throughput_mbps(),
            ))

    print(f"fleet: {len(collector)} session beacons\n")
    print("QoE by (network impaired, memory pressure seen):")
    for (net, mem), stats in sorted(collector.disambiguation_report().items()):
        label = f"net={'bad' if net else 'ok '} mem={'yes' if mem else 'no '}"
        print(f"  {label}  sessions {stats.sessions:2d}  "
              f"bad-QoE {stats.bad_qoe_rate * 100:5.1f}%  "
              f"crash {stats.crash_rate * 100:5.1f}%  "
              f"mean drop {stats.mean_drop_rate * 100:5.1f}%")

    attribution = collector.pressure_attribution()
    if attribution is not None:
        print(f"\nOf good-network sessions with bad QoE, "
              f"{attribution * 100:.0f}% reported memory-pressure signals —")
        print("without the memory column those sessions would be unexplained.")

    print("\nCrash rate by device RAM (the case for wider encoding ladders):")
    for ram, rate in collector.crash_rate_by_ram().items():
        print(f"  {ram / 1024:.0f} GB: {rate * 100:5.1f}%")


if __name__ == "__main__":
    main()
