"""The pluggable ABR policy registry.

An arena entrant is a :class:`PolicyEntry`: a stable name, the policy
family it represents, and a module-level factory that builds a **fresh**
:class:`~repro.core.abr.AbrController` for each session (controllers
carry per-session state; sharing one across repetitions would leak
state between cells, which is why the factory — not an instance — is
the registered object, and why the factory must be picklable into
worker processes).

Policies are looked up *by name* everywhere downstream — arena jobs
carry the name, the leaderboard keys on it, and the job content address
folds in the entry's ``revision`` so a behavioral change to a policy
deliberately invalidates its cached records.  Experiments must go
through :func:`build_policy` rather than instantiating controller
classes ad hoc; ``repro lint`` rule REP110 enforces this.

The four shipped entrants cover the four families ROADMAP item 1 names:

``buffer``
    BBA-style occupancy mapping (network bottleneck, buffer signal).
``rate``
    throughput-rule (network bottleneck, rate signal).
``pressure``
    the paper's §6 OnTrimMemory-driven controller
    (:class:`~repro.core.abr.MemoryAwareAbr`), unchanged — the arena's
    differential oracle holds this entrant bit-for-bit equal to the
    legacy ``memory_aware_comparison`` experiment.
``hybrid``
    context-aware decode-resolution adaptation with recovery
    hysteresis (:class:`~repro.core.abr.HybridAbr`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.abr import (
    AbrController,
    BufferBasedAbr,
    HybridAbr,
    MemoryAwareAbr,
    RateBasedAbr,
)


@dataclass(frozen=True)
class PolicyEntry:
    """One registered arena entrant."""

    name: str
    family: str
    description: str
    factory: Callable[[], AbrController]
    #: Bumped whenever the factory's behavior changes; folded into the
    #: arena job content address so stale cached records stop matching.
    revision: int = 1

    def build(self) -> AbrController:
        """A fresh controller for one session."""
        return self.factory()

    @property
    def fingerprint(self) -> str:
        """The identity folded into arena job content addresses."""
        return f"{self.name}@{self.revision}"


_REGISTRY: Dict[str, PolicyEntry] = {}


def register_policy(entry: PolicyEntry) -> PolicyEntry:
    """Register an entrant (idempotent re-registration is an error:
    a silently replaced policy would invalidate leaderboards)."""
    if entry.name in _REGISTRY:
        raise ValueError(f"policy {entry.name!r} already registered")
    if not callable(entry.factory):
        raise TypeError(f"policy {entry.name!r} factory is not callable")
    _REGISTRY[entry.name] = entry
    return entry


def get_policy(name: str) -> PolicyEntry:
    """The registered entry for ``name`` (KeyError names the options)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown arena policy {name!r}; registered: {policy_names()}"
        ) from None


def build_policy(name: str) -> AbrController:
    """A fresh controller for the named policy (the sanctioned way to
    instantiate a policy controller outside this module — REP110)."""
    return get_policy(name).build()


def policy_names() -> List[str]:
    """Registered policy names, in registration order."""
    return list(_REGISTRY)


# ----------------------------------------------------------------------
# The shipped entrants.  Factories are module-level callables (classes
# or functions), so arena jobs stay picklable into worker processes.
# ----------------------------------------------------------------------
register_policy(PolicyEntry(
    name="buffer",
    family="network/buffer",
    description="BBA-style linear map from buffer occupancy to the ladder",
    factory=BufferBasedAbr,
))

register_policy(PolicyEntry(
    name="rate",
    family="network/rate",
    description="highest rung within a safety factor of estimated throughput",
    factory=RateBasedAbr,
))

register_policy(PolicyEntry(
    name="pressure",
    family="memory/signal",
    description="the paper's §6 OnTrimMemory-driven frame-rate/resolution caps",
    factory=MemoryAwareAbr,
))

register_policy(PolicyEntry(
    name="hybrid",
    family="memory/context",
    description=(
        "buffer-based network proposal + decode-resolution adaptation "
        "on Moderate/Low/Critical with recovery hysteresis"
    ),
    factory=HybridAbr,
))
