"""Figure 6: transitions between memory-pressure states.

Paper: after Critical, devices move to Low 67.2% of the time and back
to Normal only 13.6%; high-pressure states persist (dwell p75 ~10-13 s
before the next transition).
"""

from repro.experiments import study_experiments
from .conftest import print_header


def test_fig6_transitions(benchmark, study_devices):
    stats = benchmark.pedantic(
        study_experiments.fig6_transitions, args=(study_devices,),
        rounds=1, iterations=1,
    )
    print_header("Figure 6 — state transitions and dwell times")
    for state, row in stats.items():
        nexts = "  ".join(
            f"->{name}:{pct:5.1f}%" for name, pct in row["next"].items()
        )
        print(
            f"  {state:9s} {nexts}   dwell p25/p50/p75 = "
            f"{row['dwell_p25_s']:.0f}/{row['dwell_median_s']:.0f}/"
            f"{row['dwell_p75_s']:.0f} s  (n={row['episodes']})"
        )

    critical = stats.get("critical")
    assert critical is not None, "no device reached Critical"
    next_critical = critical["next"]
    # Adjacent-state moves dominate; direct return to Normal is rare.
    assert next_critical.get("low", 0) > next_critical.get("normal", 0)
    assert critical["dwell_p75_s"] >= 2.0
