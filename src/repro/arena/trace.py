"""Per-session trace capture for arena scoring.

The scorers want quantities :class:`~repro.video.player.SessionResult`
does not carry directly — the first-render (startup) instant, freeze
time between consecutive rendered frames, and how long the device dwelt
at each pressure level.  Rather than widening ``SessionResult`` (and
bumping the cache schema), the arena subscribes to the simulator's
existing instrumentation topics:

* ``video.frame`` — every decode/render/skip pipeline event; render
  events that are not late are rendered frames, timestamped at emit;
* ``pressure.state`` — every pressure-level transition.

Subscribing rides the zero-cost ``sim.tracing`` gate the validation
subsystem established: handlers are read-only, so an instrumented
session's :class:`SessionResult` is bit-identical to a bare one (the
containment tests in ``tests/faults`` prove this property for checkers;
``tests/arena`` proves it for the collector via the differential
oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..kernel.pressure import MemoryPressureLevel
from ..sim.clock import Time, to_seconds
from ..sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..video.pipeline import VideoPipeline

#: A render-to-render gap beyond this many nominal frame periods is a
#: freeze (the threshold webrtc stats use is ~150 ms; two periods keeps
#: the definition frame-rate-relative the way snippet 1's freeze
#: normalization is).
FREEZE_GAP_PERIODS = 2.0


@dataclass(frozen=True)
class ArenaTrace:
    """What the collector distilled from one session (picklable)."""

    #: Absolute sim time of the first rendered frame, or None.
    first_render_s: Optional[float]
    #: Total rendered frames seen on the topic.
    rendered_frames: int
    #: Seconds of render-to-render gaps beyond the freeze threshold.
    freeze_s: float
    #: (level name, seconds) dwell per pressure level over the run,
    #: sorted by level severity; levels never entered are omitted.
    pressure_dwell: Tuple[Tuple[str, float], ...]

    def dwell(self, level: str) -> float:
        for name, seconds in self.pressure_dwell:
            if name == level:
                return seconds
        return 0.0


class TraceCollector:
    """Subscribes to ``video.frame`` and ``pressure.state`` and distills
    an :class:`ArenaTrace` when the session ends.

    ``nominal_fps`` anchors the freeze threshold; the collector tracks
    the pipeline's *current* frame period per render event, so sessions
    that adapt the encoded rate mid-stream measure freezes against the
    rate they were actually playing.
    """

    def __init__(self, sim: Simulator, nominal_fps: int) -> None:
        self.sim = sim
        self.nominal_fps = nominal_fps
        self._render_times: List[Time] = []
        self._render_periods: List[Time] = []
        #: (time, level) transitions, seeded with the t=0 Normal state.
        self._transitions: List[Tuple[Time, MemoryPressureLevel]] = [
            (sim.now, MemoryPressureLevel.NORMAL)
        ]
        sim.on("video.frame", self._on_frame)
        sim.on("pressure.state", self._on_pressure)

    # ------------------------------------------------------------------
    def _on_frame(
        self, time: Time, phase: str, pipeline: "VideoPipeline",
        **payload: object,
    ) -> None:
        if phase != "render" or payload.get("late"):
            return
        self._render_times.append(time)
        self._render_periods.append(pipeline.period)

    def _on_pressure(
        self, time: Time, level: MemoryPressureLevel, **payload: object,
    ) -> None:
        self._transitions.append((time, level))

    # ------------------------------------------------------------------
    def finalize(self) -> ArenaTrace:
        """Distill the trace at the session's end (``sim.now``)."""
        freeze: Time = 0
        for index in range(1, len(self._render_times)):
            gap = self._render_times[index] - self._render_times[index - 1]
            threshold = round(
                FREEZE_GAP_PERIODS * self._render_periods[index - 1]
            )
            if gap > threshold:
                freeze += gap - threshold
        dwell = {}
        end = self.sim.now
        for index, (start, level) in enumerate(self._transitions):
            until = (
                self._transitions[index + 1][0]
                if index + 1 < len(self._transitions)
                else end
            )
            span = max(0, until - start)
            dwell[level] = dwell.get(level, 0) + span
        return ArenaTrace(
            first_render_s=(
                to_seconds(self._render_times[0])
                if self._render_times else None
            ),
            rendered_frames=len(self._render_times),
            freeze_s=to_seconds(freeze),
            pressure_dwell=tuple(
                (level.name, to_seconds(ticks))
                for level, ticks in sorted(dwell.items())
                if ticks > 0
            ),
        )
