"""Recorder lifecycle of ``profiled_run``: the trace must cover the
playback window (attach at playback start, detach at return), and a
session the pressure ramp kills before playback must yield an honest
empty trace, not an accidentally-late one."""

from repro.experiments import trace_experiments
from repro.experiments.trace_experiments import profiled_run


def test_recorder_detached_and_covers_playback():
    run = profiled_run("normal", duration_s=2.0, seed=7)
    assert run.playback_started
    assert run.recorder.detached
    assert run.recorder.end_time > run.recorder.start_time
    assert run.recorder.transitions  # playback produced events
    # The kill-log hook outlives the recorder, so the sim may still be
    # tracing — but the recorder's own subscriptions are gone.
    sim = run.recorder.sim
    assert run.recorder._on_state not in sim._hooks.get("sched.state", [])


def test_playback_never_started_yields_empty_trace(monkeypatch):
    real_session = trace_experiments.StreamingSession

    class RampKilledSession(real_session):  # type: ignore[misc,valid-type]
        """A session whose playback never begins: the callback that
        would attach the recorder is simply never invoked."""

        def run(self, on_playback_start=None, **kwargs):
            return super().run(on_playback_start=None, **kwargs)

    monkeypatch.setattr(
        trace_experiments, "StreamingSession", RampKilledSession
    )
    run = profiled_run("normal", duration_s=2.0, seed=7)
    assert not run.playback_started
    assert run.recorder.detached
    # The fallback recorder is explicitly empty — it observed nothing.
    assert not run.recorder.transitions
    assert not run.recorder.preemptions
    assert run.recorder.start_time == run.recorder.end_time
