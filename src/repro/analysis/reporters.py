"""Finding reporters: human-readable text and machine-readable JSON.

The JSON schema is stable and versioned (``REPORT_SCHEMA_VERSION``);
``tests/analysis`` locks it, since dashboards and the CI annotation
step consume it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .engine import Finding, LintResult

REPORT_SCHEMA_VERSION = 1


def _finding_payload(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fingerprint": finding.fingerprint,
    }


def render_json(result: LintResult) -> Dict[str, Any]:
    """The machine-readable report (``repro lint --json``)."""
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "ok": result.ok,
        "findings": [_finding_payload(f) for f in result.findings],
        "baselined": [_finding_payload(f) for f in result.baselined],
        "suppressed": [_finding_payload(f) for f in result.suppressed],
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "files_checked": result.files_checked,
            "rules_run": list(result.rules_run),
        },
    }


def render_text(result: LintResult) -> List[str]:
    """Human-readable report lines (one finding per line)."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}"
        )
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    lines.append(summary if result.findings else f"clean: {summary}")
    return lines
