"""Sweep checkpoint journal: incremental, resumable session results.

Long §3/§4 sweeps are exactly the multi-hour batch jobs that must
survive a SIGINT, SIGTERM, or killed host.  The journal makes every
completed :class:`~repro.experiments.parallel.SessionSpec` durable the
moment it finishes: :func:`~repro.experiments.parallel.run_sessions`
appends one record per completed job, and a resumed sweep replays those
records instead of recomputing — bit-identical to an uninterrupted run,
because a record is keyed by the spec's content address and a spec
fully determines its result.

Format (documented in ``docs/robustness.md``): a line-oriented JSON
file.  The first line is a header::

    {"journal": "repro-sweep", "version": 2, "schema": <SCHEMA_VERSION>}

and every subsequent line is one completed job::

    {"key": "<sha256 spec digest>", "result": "<base64 pickle>", "crc": "<crc32>"}

Appends are flushed per record, so a crash loses at most the record
being written; the header and the final state are additionally fsynced
(open and close are the two moments an OS crash could otherwise lose
acknowledged work wholesale).  The per-record CRC-32 — computed over
``key + "\\x00" + result`` — is what makes truncated-tail detection
exact: a torn line either fails to parse or fails its CRC, is counted
in :attr:`SweepJournal.skipped`, and resume skips exactly that record
rather than trusting whatever happens to parse.  Version-1 journals
(no CRC field) are still readable; their records fall back to
parse-validation.  A journal whose header names a different
:data:`~repro.experiments.parallel.SCHEMA_VERSION` is stale (results
would no longer be comparable) and is discarded wholesale.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from pathlib import Path
from typing import IO, Any, Dict, Optional, Sequence

from ..storage import fsync_handle, open_journal, record_crc
from ..video.player import SessionResult
from .parallel import SCHEMA_VERSION, SessionSpec, cache_key, default_cache_dir

JOURNAL_MAGIC = "repro-sweep"
JOURNAL_VERSION = 2

#: Header versions this reader accepts: v1 journals predate per-record
#: CRCs but their records are otherwise identical.
COMPATIBLE_JOURNAL_VERSIONS = frozenset({1, JOURNAL_VERSION})


def sweep_digest(specs: Sequence[SessionSpec]) -> str:
    """Stable identity of a sweep: hash of its sorted job digests.

    Used to derive a default journal path, so re-running the same
    command line finds its own journal and a different grid gets a
    fresh one.  Non-cacheable specs (shared-instance ABR) contribute
    nothing: they are never journaled.
    """
    keys = sorted(cache_key(spec) for spec in specs if spec.cacheable)
    blob = "\n".join([str(len(keys)), *keys])
    return hashlib.sha256(blob.encode()).hexdigest()


def default_journal_path(
    specs: Sequence[SessionSpec], root: Optional[Path] = None
) -> Path:
    """``<cache root>/journals/<sweep digest>.journal``."""
    base = root if root is not None else default_cache_dir()
    return base / "journals" / f"{sweep_digest(specs)[:16]}.journal"


class SweepJournal:
    """Append-only checkpoint store for one sweep.

    ``resume=True`` loads any compatible existing journal and appends
    to it; ``resume=False`` truncates and starts fresh.  The journal is
    left in place after a successful sweep — resuming a finished sweep
    is a cheap no-op that replays every record.
    """

    def __init__(
        self,
        path: Path | str,
        resume: bool = True,
        *,
        magic: str = JOURNAL_MAGIC,
        schema: int = SCHEMA_VERSION,
        result_type: type = SessionResult,
    ) -> None:
        self.path = Path(path)
        self.resume = resume
        #: Journal family tag, schema stamp, and the record payload
        #: type accepted on load.  Session sweeps use the defaults;
        #: other job families (e.g. fleet cohort shards) pass their own
        #: so a stale or foreign journal is discarded, not replayed.
        self.magic = magic
        self.schema = schema
        self.result_type = result_type
        #: Records written by this process (not counting loaded ones).
        self.recorded = 0
        #: Corrupt or truncated lines skipped during :meth:`begin`.
        self.skipped = 0
        self._fh: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    def begin(self) -> Dict[str, Any]:
        """Open the journal and return the resumable results.

        Returns ``{}`` when starting fresh, when no journal exists yet,
        or when the existing file's header is missing, malformed, or
        from a different schema version (a stale journal must not leak
        incomparable results into a new sweep).
        """
        entries: Dict[str, Any] = {}
        header_ok = False
        if self.resume:
            entries, header_ok = self._load()
        if header_ok:
            self._fh = open_journal(self.path, fresh=False)
        else:
            self._fh = open_journal(self.path, fresh=True)
            header = {
                "journal": self.magic,
                "version": JOURNAL_VERSION,
                "schema": self.schema,
            }
            self._fh.write(json.dumps(header, separators=(",", ":")) + "\n")
            # An OS crash after begin() must not be able to lose the
            # header: records appended later would then parse as a
            # headerless (= discarded) journal.
            fsync_handle(self._fh)
        return entries

    def record(self, key: str, result: Any) -> None:
        """Append one completed job (flushed immediately)."""
        if self._fh is None:
            self._fh = open_journal(self.path, fresh=False)
        blob = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        line = json.dumps(
            {"key": key, "result": blob, "crc": record_crc(f"{key}\x00{blob}")},
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        self.recorded += 1

    def close(self) -> None:
        if self._fh is not None:
            # Everything acknowledged so far becomes durable before the
            # handle goes away — the journal's moment of truth.
            fsync_handle(self._fh)
            self._fh.close()
            self._fh = None

    def remove(self) -> None:
        """Delete the journal file (explicit cleanup; never automatic)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    # ------------------------------------------------------------------
    def _load(self) -> tuple[Dict[str, Any], bool]:
        entries: Dict[str, Any] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return entries, False
        lines = text.splitlines()
        if not lines:
            return entries, False
        try:
            header = json.loads(lines[0])
        except ValueError:
            return entries, False
        if (
            not isinstance(header, dict)
            or header.get("journal") != self.magic
            or header.get("version") not in COMPATIBLE_JOURNAL_VERSIONS
            or header.get("schema") != self.schema
        ):
            return entries, False
        for line in lines[1:]:
            try:
                record = json.loads(line)
                key = record["key"]
                blob = record["result"]
                if "crc" in record and record["crc"] != record_crc(
                    f"{key}\x00{blob}"
                ):
                    # The CRC was written with the record, so a mismatch
                    # means the line was cut mid-append: skip exactly it.
                    self.skipped += 1
                    continue
                result = pickle.loads(base64.b64decode(blob))
            except Exception:
                # A kill mid-append leaves at most one truncated tail
                # line; tolerate it (counted) instead of refusing the
                # whole journal.
                self.skipped += 1
                continue
            if isinstance(key, str) and isinstance(result, self.result_type):
                entries[key] = result
            else:
                self.skipped += 1
        return entries, True
