"""Determinism rules: constructs that break bit-identical replay.

Everything the reproduction claims — serial/parallel equivalence,
golden-trace digests, cache hits standing in for live runs — holds only
while a session's trajectory is a pure function of its
:class:`~repro.experiments.parallel.SessionSpec`.  These rules ban the
constructs that quietly break that purity inside the simulation core
(``sim``, ``kernel``, ``sched``, ``video``, ``workload``, ``device``,
``core``, ``trace``):

========  ==========================================================
REP101    wall-clock reads (``time.time``, ``datetime.now``, ...)
REP102    module-level ``random`` draws instead of named sim streams
REP103    builtin ``hash()`` (salted per process via PYTHONHASHSEED)
REP104    iteration over a ``set``/``frozenset`` (arbitrary order)
REP105    ``id()``-based ordering or tie-breaking (address-dependent)
REP106    float ``==``/``!=`` against float literals in invariant code
REP108    hand-rolled self-rescheduling poll loop (use PeriodicService)
========  ==========================================================

``benchmarks/`` is intentionally outside every scope: wall-clock timing
is the whole point there.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..engine import Finding, ImportMap, Rule, SourceFile

#: The deterministic core: packages whose code runs inside a simulation.
#: ``trace`` joined when the store/replay layer landed: a recorder or
#: replayed trace feeding nondeterminism into analysis would silently
#: break the live-vs-replay bit-identity contract.
DETERMINISM_SCOPE: FrozenSet[str] = frozenset(
    {"sim", "kernel", "sched", "video", "workload", "device", "core", "trace"}
)

#: Invariant code additionally covered by the float-equality rule.
INVARIANT_SCOPE: FrozenSet[str] = DETERMINISM_SCOPE | {"validate", "experiments"}


# ----------------------------------------------------------------------
class WallClockRule(Rule):
    """REP101: wall-clock reads inside the simulation core."""

    id = "REP101"
    title = "wall-clock read in simulation code"
    rationale = (
        "Simulated time comes from Simulator.now; reading the host clock "
        "makes a run depend on machine load and breaks replay."
    )
    scope = DETERMINISM_SCOPE

    BANNED: FrozenSet[str] = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.localtime", "time.gmtime", "time.ctime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        imports = ImportMap(src.tree)
        for call in _calls(src.tree):
            dotted = imports.resolve(call.func)
            if dotted in self.BANNED:
                yield self.finding(
                    src, call,
                    f"wall-clock call {dotted}() — use the simulator clock "
                    "(sim.now) or take timestamps at the experiment boundary",
                )


# ----------------------------------------------------------------------
class ModuleRandomRule(Rule):
    """REP102: draws from the process-global ``random`` module."""

    id = "REP102"
    title = "module-level random draw"
    rationale = (
        "The global random module shares one process-wide state: any "
        "draw order change (or another import drawing first) perturbs "
        "every later value.  All randomness must come from named "
        "sim.random streams (repro.sim.rng.RandomStreams)."
    )
    scope = DETERMINISM_SCOPE

    DRAW_FNS: FrozenSet[str] = frozenset({
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "triangular",
        "paretovariate", "vonmisesvariate", "weibullvariate", "getrandbits",
        "seed", "binomialvariate",
    })

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        imports = ImportMap(src.tree)
        for call in _calls(src.tree):
            dotted = imports.resolve(call.func)
            if dotted is None:
                continue
            if dotted == "random.SystemRandom":
                yield self.finding(
                    src, call,
                    "random.SystemRandom() draws from the OS entropy pool "
                    "and can never replay — use a seeded named stream",
                )
            elif (
                dotted.startswith("random.")
                and dotted.split(".", 1)[1] in self.DRAW_FNS
            ):
                yield self.finding(
                    src, call,
                    f"module-level {dotted}() shares global RNG state — "
                    "draw from a named stream via sim.random.stream(name)",
                )


# ----------------------------------------------------------------------
class BuiltinHashRule(Rule):
    """REP103: builtin ``hash()`` in simulation code."""

    id = "REP103"
    title = "builtin hash() call"
    rationale = (
        "str/bytes hashes are salted per process (PYTHONHASHSEED), so "
        "anything derived from hash() differs between workers and runs. "
        "Use hashlib (as repro.sim.rng.derive_seed does) for stable "
        "digests."
    )
    scope = DETERMINISM_SCOPE

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        for call in _calls(src.tree):
            if isinstance(call.func, ast.Name) and call.func.id == "hash":
                yield self.finding(
                    src, call,
                    "builtin hash() is salted per process — use "
                    "hashlib.sha256 (see sim.rng.derive_seed) for a "
                    "stable digest",
                )


# ----------------------------------------------------------------------
class SetIterationRule(Rule):
    """REP104: iterating a set in code that feeds scheduling decisions."""

    id = "REP104"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order depends on insertion history and on the "
        "per-process hash salt for str elements; feeding it into "
        "scheduling, victim selection, or event enqueue makes runs "
        "diverge.  Wrap in sorted(...) or keep an explicit list."
    )
    scope = DETERMINISM_SCOPE

    #: Wrappers whose result is order-insensitive: iterating inside them
    #: is safe even when the operand is a set.
    ORDER_FREE_CALLS: FrozenSet[str] = frozenset({
        "sorted", "len", "sum", "min", "max", "any", "all", "set",
        "frozenset",
    })

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        set_names = _locally_bound_sets(src.tree)

        def unordered(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("set", "frozenset"):
                    return True
            if isinstance(node, ast.Name) and node.id in set_names:
                return True
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ):
                return unordered(node.left) or unordered(node.right)
            return False

        findings: List[Finding] = []

        def flag(node: ast.AST, context: str) -> None:
            findings.append(self.finding(
                src, node,
                f"{context} iterates a set in arbitrary order — wrap in "
                "sorted(...) with an explicit key, or use a list",
            ))

        for node in ast.walk(src.tree):
            if isinstance(node, ast.For) and unordered(node.iter):
                flag(node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    # Building another set from a set is order-free.
                    if isinstance(node, ast.SetComp):
                        continue
                    if unordered(gen.iter):
                        flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                name = node.func.id if isinstance(node.func, ast.Name) else None
                if name in ("list", "tuple", "iter", "enumerate", "reversed"):
                    if node.args and unordered(node.args[0]):
                        flag(node.args[0], f"{name}()")
                elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
                    if node.args and unordered(node.args[0]):
                        flag(node.args[0], "str.join()")
            elif isinstance(node, ast.Starred) and unordered(node.value):
                flag(node.value, "unpacking")
        return findings


def _locally_bound_sets(tree: ast.AST) -> Set[str]:
    """Names assigned from an obvious set expression anywhere in the file.

    A coarse, suppressible heuristic: one-level dataflow is enough to
    catch ``victims = set(...) ... for v in victims`` without a type
    checker.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name) and _is_set_expr(value):
                names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and _is_set_expr(node.value):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


# ----------------------------------------------------------------------
class IdOrderingRule(Rule):
    """REP105: ``id()`` in simulation code (address-dependent values)."""

    id = "REP105"
    title = "id()-derived value in simulation code"
    rationale = (
        "CPython object addresses differ between runs and workers; any "
        "ordering, tie-break, or key derived from id() is "
        "irreproducible.  Use a stable attribute (name, table index, "
        "sequence number) instead."
    )
    scope = DETERMINISM_SCOPE

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        for call in _calls(src.tree):
            if isinstance(call.func, ast.Name) and call.func.id == "id":
                yield self.finding(
                    src, call,
                    "id() yields a per-run object address — break ties "
                    "with a stable attribute (name, index, seq) instead",
                )


# ----------------------------------------------------------------------
class FloatEqualityRule(Rule):
    """REP106: exact float comparison against a float literal."""

    id = "REP106"
    title = "exact float equality in invariant code"
    rationale = (
        "Float accumulation order is part of the replay contract; an "
        "invariant written as x == 0.3 silently never fires (or fires "
        "spuriously) when a refactor reassociates the arithmetic.  "
        "Compare integers, use tolerances, or restructure the check."
    )
    scope = INVARIANT_SCOPE

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (left, right) in zip(
                node.ops, zip(operands, operands[1:])
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = _float_literal(left) or _float_literal(right)
                if literal is not None:
                    yield self.finding(
                        src, node,
                        f"exact float comparison against {literal!r} — "
                        "use an integer representation, an inequality, "
                        "or an explicit tolerance",
                    )


# ----------------------------------------------------------------------
class SelfReschedulingLoopRule(Rule):
    """REP108: hand-rolled self-rescheduling periodic poll loop."""

    id = "REP108"
    title = "hand-rolled self-rescheduling poll loop"
    rationale = (
        "A callback that re-schedules itself with a period-like delay "
        "re-implements PeriodicService minus its guarantees: the stop "
        "contract, the double-arm guard, and the fixed re-arm position "
        "that keeps event sequence numbers (and therefore golden "
        "traces) stable.  Use repro.sim.PeriodicService instead."
    )
    scope = DETERMINISM_SCOPE | frozenset({"trace", "validate"})

    #: Delay identifiers that mark the call as periodic rather than a
    #: one-shot retry/backoff (which legitimately self-reschedules).
    PERIOD_NAME = re.compile(r"(?i)(?:^|_)(?:period|interval)s?(?:_|$)")

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        findings: List[Finding] = []
        self._visit_body(src, src.tree, enclosing=None, findings=findings)
        return findings

    def _visit_body(
        self,
        src: SourceFile,
        node: ast.AST,
        enclosing: Optional[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_body(src, child, child.name, findings)
            elif isinstance(child, (ast.ClassDef, ast.Lambda)):
                self._visit_body(src, child, None, findings)
            else:
                value = getattr(child, "value", None)
                if (
                    enclosing is not None
                    and isinstance(child, (ast.Expr, ast.Assign, ast.AnnAssign))
                    and isinstance(value, ast.Call)
                    and self._is_self_reschedule(value, enclosing)
                ):
                    findings.append(self.finding(
                        src, value,
                        f"{enclosing}() re-schedules itself with a "
                        "period-like delay — replace the hand-rolled loop "
                        "with repro.sim.PeriodicService",
                    ))
                self._visit_body(src, child, enclosing, findings)

    def _is_self_reschedule(self, call: ast.Call, enclosing: str) -> bool:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "schedule"
            and len(call.args) >= 2
        ):
            return False
        callback = call.args[1]
        if isinstance(callback, ast.Attribute):
            callback_name: Optional[str] = callback.attr
        elif isinstance(callback, ast.Name):
            callback_name = callback.id
        else:
            callback_name = None
        if callback_name != enclosing:
            return False
        return any(
            self.PERIOD_NAME.search(name)
            for name in _mentioned_names(call.args[0])
        )


def _mentioned_names(node: ast.AST) -> Iterator[str]:
    """Every identifier mentioned anywhere in an expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _float_literal(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is float
    ):
        return node.operand.value
    return None


# ----------------------------------------------------------------------
def _calls(tree: Optional[ast.AST]) -> Iterator[ast.Call]:
    assert tree is not None
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


DETERMINISM_RULES: Tuple[type, ...] = (
    WallClockRule,
    ModuleRandomRule,
    BuiltinHashRule,
    SetIterationRule,
    IdOrderingRule,
    FloatEqualityRule,
    SelfReschedulingLoopRule,
)
