"""The discrete-event simulator core.

:class:`Simulator` owns the clock, the event queue, and the random
streams.  Components register callbacks with :meth:`Simulator.schedule`
(relative delay) or :meth:`Simulator.schedule_at` (absolute time) and the
engine fires them in timestamp order.  A run advances until the horizon
passed to :meth:`run`, until the queue drains, or until a component calls
:meth:`stop`.

The engine is deliberately callback-based rather than coroutine-based:
the Android kernel daemons modelled on top of it are themselves
event-driven state machines (wakeups, watermarks, I/O completions), so
callbacks map one-to-one onto the mechanisms being simulated and keep
stack traces flat.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .clock import Time
from .events import Event, EventQueue
from .rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation engine with named random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.now: Time = 0
        self.random = RandomStreams(seed)
        self._queue = EventQueue()
        self._stopped = False
        self._hooks: Dict[str, List[Callable[..., None]]] = {}
        #: True once any subscriber has registered.  Hot call sites
        #: check this before building an emit payload so instrumentation
        #: costs nothing when nobody is listening (the common case).
        self.tracing = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: Time,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` ticks (must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for {label or fn}")
        return self._queue.push(self.now + delay, fn, args, label)

    def schedule_at(
        self,
        time: Time,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` (must be >= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        return self._queue.push(time, fn, args, label)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously-scheduled event; None is accepted and ignored."""
        if event is not None and not event.cancelled:
            event.cancel()
            self._queue.note_cancelled(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[Time] = None) -> Time:
        """Fire events in order until the horizon or queue exhaustion.

        Returns the simulation time when the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the
        last event fired earlier, so back-to-back ``run`` calls tile time.
        """
        self._stopped = False
        queue = self._queue
        pop_ready = queue.pop_ready
        while not self._stopped:
            batch = pop_ready(until)
            if batch is None:
                break
            first = batch[0]
            self.now = first.time
            # The head of a batch cannot have been cancelled (nothing
            # ran between pop and here), so fire it unconditionally.
            first.fn(*first.args)
            size = len(batch)
            if size > 1:
                retire = queue.retire
                index = 1
                while index < size and not self._stopped:
                    event = batch[index]
                    # Retire the member as we reach it: an event whose
                    # cancellation was accounted mid-batch is a no-op
                    # here, any other leaves the live count now.
                    retire(event)
                    # Later members may have been cancelled by an
                    # earlier event in this same batch.
                    if not event.cancelled:
                        event.fn(*event.args)
                    index += 1
                if index < size:  # stopped mid-batch: keep the rest
                    for later in batch[index:]:
                        if later.cancelled:
                            retire(later)
                        else:
                            queue.requeue(later)
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Halt the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Hooks: lightweight pub/sub used by the trace recorder and tests
    # ------------------------------------------------------------------
    def on(self, topic: str, callback: Callable[..., None]) -> None:
        """Subscribe ``callback`` to ``topic`` (see :meth:`emit`)."""
        self._hooks.setdefault(topic, []).append(callback)
        self.tracing = True

    def emit(self, topic: str, **payload: Any) -> None:
        """Publish an instrumentation event to all ``topic`` subscribers."""
        if not self.tracing:
            return
        hooks = self._hooks.get(topic)
        if not hooks:
            return
        now = self.now
        for callback in hooks:
            callback(time=now, **payload)
