"""Streaming mergeable sketches for the fleet population engine.

The million-device pipeline cannot hold per-device arrays, so each
cohort reduces its per-second samples into small mergeable summaries:

* :class:`TDigest` — a t-digest over a value distribution (available
  memory per pressure state, per-device median utilization).  Centroids
  are built **once per cohort** with a deterministic compression pass;
  cross-cohort :meth:`TDigest.merge` is a *canonical multiset union* of
  centroid lists (no re-compression), which makes merging exactly
  associative and commutative — the property the shard-invariance
  guarantee rests on.  Memory is O(cohorts · compression).
* exact counter maps (plain ints / dicts) merged by addition, used for
  signal frequencies, time-in-state, and transition statistics; dwell
  times are kept as ``{duration: count}`` histograms so quartiles can
  be computed *exactly* at finalize time (see
  :func:`percentile_from_counts`, a bit-exact replica of
  ``np.percentile(..)``'s linear interpolation).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "TDigest",
    "merge_count_dicts",
    "percentile_from_counts",
    "median_from_counts",
]


class TDigest:
    """A mergeable quantile sketch (Dunning's t-digest, k0-style).

    ``means``/``weights`` are float64 arrays sorted by (mean, weight).
    Compression happens only in :meth:`from_values` / :meth:`from_counts`
    (per cohort); :meth:`merge` concatenates and canonically re-sorts,
    so ``merge`` is exactly associative and commutative and a merged
    digest is bit-identical however the cohorts were grouped into
    shards.
    """

    __slots__ = ("means", "weights", "compression")

    def __init__(
        self,
        means: np.ndarray,
        weights: np.ndarray,
        compression: int = 100,
    ) -> None:
        self.means = np.asarray(means, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.compression = int(compression)

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, compression: int = 100) -> "TDigest":
        return cls(np.empty(0), np.empty(0), compression)

    @classmethod
    def from_values(
        cls, values: Sequence[float], compression: int = 100
    ) -> "TDigest":
        """Build a digest from raw values (sorted internally)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return cls.empty(compression)
        arr = np.sort(arr, kind="stable")
        return cls.from_counts(arr, np.ones(arr.size), compression)

    @classmethod
    def from_counts(
        cls,
        values: np.ndarray,
        counts: np.ndarray,
        compression: int = 100,
    ) -> "TDigest":
        """Build from ``(sorted values, weights)`` pairs.

        One deterministic left-to-right pass merges neighbours while the
        merged centroid's weight stays under the k0 size limit
        ``4·W·q·(1-q)/compression`` at its midpoint quantile ``q`` —
        centroids stay small near the tails, so tail quantiles stay
        sharp.
        """
        values = np.asarray(values, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if values.size == 0:
            return cls.empty(compression)
        if np.any(np.diff(values) < 0):
            raise ValueError("from_counts requires sorted values")
        total = float(counts.sum())
        out_mean: List[float] = []
        out_weight: List[float] = []
        cur_sum = float(values[0]) * float(counts[0])
        cur_w = float(counts[0])
        done_w = 0.0
        for value, count in zip(values[1:], counts[1:]):
            candidate_w = cur_w + float(count)
            q = (done_w + candidate_w / 2.0) / total
            limit = 4.0 * total * q * (1.0 - q) / float(compression)
            if candidate_w <= limit:
                cur_sum += float(value) * float(count)
                cur_w = candidate_w
            else:
                out_mean.append(cur_sum / cur_w)
                out_weight.append(cur_w)
                done_w += cur_w
                cur_sum = float(value) * float(count)
                cur_w = float(count)
        out_mean.append(cur_sum / cur_w)
        out_weight.append(cur_w)
        means = np.asarray(out_mean)
        weights = np.asarray(out_weight)
        order = np.lexsort((weights, means))
        return cls(means[order], weights[order], compression)

    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        return float(self.weights.sum()) if self.weights.size else 0.0

    @property
    def n_centroids(self) -> int:
        return int(self.means.size)

    def merge(self, other: "TDigest") -> "TDigest":
        """Canonical multiset union of the two centroid lists.

        No re-compression: the result is the sorted concatenation, so
        ``a.merge(b) == b.merge(a)`` and
        ``(a.merge(b)).merge(c) == a.merge(b.merge(c))`` hold *bit for
        bit* — any shard grouping of cohorts yields the same digest.
        """
        if self.n_centroids == 0:
            return TDigest(other.means, other.weights, self.compression)
        if other.n_centroids == 0:
            return TDigest(self.means, self.weights, self.compression)
        means = np.concatenate([self.means, other.means])
        weights = np.concatenate([self.weights, other.weights])
        order = np.lexsort((weights, means))
        return TDigest(means[order], weights[order], self.compression)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1).

        Standard t-digest interpolation: centroid *i* sits at cumulative
        weight ``W_{<i} + w_i/2``; the result interpolates linearly
        between neighbouring centroid means and clamps to the extreme
        means at the tails.
        """
        if self.n_centroids == 0:
            raise ValueError("quantile of an empty digest")
        if self.n_centroids == 1:
            return float(self.means[0])
        q = min(1.0, max(0.0, float(q)))
        total = self.total_weight
        target = q * total
        cum = np.cumsum(self.weights)
        centers = cum - self.weights / 2.0
        if target <= centers[0]:
            return float(self.means[0])
        if target >= centers[-1]:
            return float(self.means[-1])
        hi = int(np.searchsorted(centers, target, side="right"))
        lo = hi - 1
        span = centers[hi] - centers[lo]
        frac = 0.0 if span <= 0 else (target - centers[lo]) / span
        return float(self.means[lo] + frac * (self.means[hi] - self.means[lo]))

    def cdf(self, x: float) -> float:
        """Estimated fraction of weight at values <= ``x``."""
        if self.n_centroids == 0:
            raise ValueError("cdf of an empty digest")
        if x < self.means[0]:
            return 0.0
        if x >= self.means[-1]:
            return 1.0
        cum = np.cumsum(self.weights)
        centers = cum - self.weights / 2.0
        hi = int(np.searchsorted(self.means, x, side="right"))
        hi = min(hi, self.n_centroids - 1)
        lo = max(0, hi - 1)
        if self.means[hi] == self.means[lo]:
            return float(centers[hi] / self.total_weight)
        frac = (x - self.means[lo]) / (self.means[hi] - self.means[lo])
        est = centers[lo] + frac * (centers[hi] - centers[lo])
        return float(min(1.0, max(0.0, est / self.total_weight)))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TDigest):
            return NotImplemented
        return (
            np.array_equal(self.means, other.means)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # pragma: no cover - digests not hashed
        return hash((self.means.tobytes(), self.weights.tobytes()))

    def __repr__(self) -> str:
        return (
            f"TDigest(n={self.n_centroids}, weight={self.total_weight:.0f}, "
            f"compression={self.compression})"
        )


def merge_count_dicts(
    a: Dict[int, int], b: Dict[int, int]
) -> Dict[int, int]:
    """Pointwise sum of two integer histograms (associative, exact)."""
    out = dict(a)
    for key, count in b.items():
        out[key] = out.get(key, 0) + count
    return out


def _order_stats_from_counts(
    values: np.ndarray, counts: np.ndarray, ranks: Sequence[int]
) -> List[float]:
    """Exact order statistics (0-based ranks) of the expanded multiset."""
    cum = np.cumsum(counts)
    return [
        float(values[int(np.searchsorted(cum, rank, side="right"))])
        for rank in ranks
    ]


def percentile_from_counts(
    values: np.ndarray, counts: np.ndarray, q: float
) -> float:
    """``np.percentile(expanded, q)`` (linear) without expanding.

    ``values`` must be sorted ascending with positive integer
    ``counts``.  Replicates numpy's linear interpolation **including**
    its two-branch lerp (``a + (b-a)·g`` below the midpoint,
    ``b - (b-a)·(1-g)`` at or above it), so dwell-time quartiles from a
    histogram match ``np.percentile`` on the raw array bit for bit.
    """
    values = np.asarray(values, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    n = int(counts.sum())
    if n == 0:
        raise ValueError("percentile of an empty histogram")
    virtual = (q / 100.0) * (n - 1)
    lo_rank = int(np.floor(virtual))
    g = virtual - lo_rank
    lo, hi = _order_stats_from_counts(
        values, counts, [lo_rank, min(lo_rank + 1, n - 1)]
    )
    if g == 0.0:
        return lo
    diff = hi - lo
    if g < 0.5:
        return lo + diff * g
    return hi - diff * (1.0 - g)


def median_from_counts(values: np.ndarray, counts: np.ndarray) -> float:
    """``np.median(expanded)`` without expanding.

    numpy's median averages the two middle order statistics as
    ``(a + b)/2`` (not the percentile lerp), so this is kept separate
    from :func:`percentile_from_counts`.
    """
    values = np.asarray(values, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    n = int(counts.sum())
    if n == 0:
        raise ValueError("median of an empty histogram")
    if n % 2:
        (mid,) = _order_stats_from_counts(values, counts, [n // 2])
        return mid
    a, b = _order_stats_from_counts(values, counts, [n // 2 - 1, n // 2])
    return (a + b) / 2.0


def dwell_histogram(durations: np.ndarray) -> Dict[int, int]:
    """``{duration_s: count}`` histogram of integer dwell times."""
    if len(durations) == 0:
        return {}
    values, counts = np.unique(np.asarray(durations, dtype=np.int64),
                               return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def sorted_items(hist: Dict[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """A histogram dict as (sorted values, counts) arrays."""
    if not hist:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    values = np.array(sorted(hist), dtype=np.int64)
    counts = np.array([hist[int(v)] for v in values], dtype=np.int64)
    return values, counts
