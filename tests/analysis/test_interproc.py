"""The whole-program passes: taint chains, pickle escapes, emit schemas.

Each REP12x/REP13x/REP22x rule is pinned to its bad fixture (it must
fire there, with the right shape of message) and to its good twin (it
must stay silent).  A hypothesis property then locks the analyses'
order-independence: facts extracted from any permutation of the file
list must produce identical findings, which is the property the
parallel driver and the cache both lean on.
"""

import random
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_rules, collect_files, run_rules
from repro.analysis.engine import analyze_file, finish_run
from repro.analysis.project import ProjectIndex

FIXTURES = Path(__file__).parent / "fixtures"

TAINT = FIXTURES / "repro" / "taint"
BOUNDARY = FIXTURES / "repro" / "boundary"
BUS = FIXTURES / "repro" / "bus"


def findings_for(paths, rules=None):
    files = collect_files([FIXTURES / p for p in paths], FIXTURES)
    findings, _ = run_rules(files, build_rules(rules))
    return findings


def rules_fired(paths, rules=None):
    return {f.rule for f in findings_for(paths, rules)}


# ----------------------------------------------------------------------
# REP120-series: interprocedural determinism taint
# ----------------------------------------------------------------------
def test_wallclock_chain_two_calls_deep_fires_rep120():
    findings = findings_for(
        ["repro/taint/bad_chain.py", "repro/taint/helpers.py"]
    )
    taint = [f for f in findings if f.rule == "REP120"]
    assert len(taint) == 1
    finding = taint[0]
    assert finding.path == "repro/taint/bad_chain.py"
    assert "wall-clock" in finding.message
    assert "derive_seed" in finding.message
    # The witness chain proves the flow crossed >= 2 calls into
    # another module before reaching the sink.
    assert "via relay() -> mix() -> entropy_ns()" in finding.message


def test_taint_support_module_is_clean_alone():
    # helpers.py produces tainted values but has no sink: silent.
    assert rules_fired(["repro/taint/helpers.py"]) == set()


def test_good_chain_is_silent():
    assert "REP120" not in rules_fired(
        ["repro/taint/good_chain.py", "repro/taint/helpers.py"]
    )


def test_unseeded_random_into_seed_kwarg_fires_rep121():
    findings = findings_for(["repro/taint/bad_random_seed.py"])
    assert {f.rule for f in findings} == {"REP121"}
    assert "seed=" in findings[0].message


def test_good_random_seed_is_silent():
    assert rules_fired(["repro/taint/good_random_seed.py"]) == set()


def test_environ_into_cache_key_fires_rep122():
    findings = findings_for(["repro/taint/bad_env_key.py"])
    assert {f.rule for f in findings} == {"REP122"}
    assert "cache_key" in findings[0].message


def test_env_for_output_paths_is_silent():
    assert rules_fired(["repro/taint/good_env_key.py"]) == set()


def test_set_order_into_journal_fires_rep123():
    findings = findings_for(["repro/taint/bad_set_order.py"])
    assert {f.rule for f in findings} == {"REP123"}
    assert "journal.record" in findings[0].message


def test_sorted_set_is_silent():
    assert rules_fired(["repro/taint/good_set_order.py"]) == set()


# ----------------------------------------------------------------------
# REP130: pickle-boundary escape analysis
# ----------------------------------------------------------------------
def test_nested_live_handle_fires_rep130():
    findings = findings_for(["repro/boundary/bad_handles.py"])
    escapes = [f for f in findings if f.rule == "REP130"]
    assert len(escapes) == 1
    message = escapes[0].message
    # The full field path is part of the finding: the handle is one
    # level of nesting down from the submitted class.
    assert "RenderJob" in message
    assert "workspace: Workspace" in message
    assert "TemporaryDirectory" in message


def test_plain_data_payload_is_silent():
    assert "REP130" not in rules_fired(["repro/boundary/good_handles.py"])


# ----------------------------------------------------------------------
# REP220-series: emit-bus payload schemas
# ----------------------------------------------------------------------
def test_cross_module_shape_mismatch_fires_rep220():
    findings = findings_for(
        ["repro/bus/bad_shape_emitter.py", "repro/bus/bad_shape_subscriber.py"]
    )
    rep220 = [f for f in findings if f.rule == "REP220"]
    paths = {f.path for f in rep220}
    # Both sides of the cross-module break are reported: the handler
    # missing its required key, and the emit site passing a key the
    # handler cannot accept.
    assert "repro/bus/bad_shape_subscriber.py" in paths
    assert "repro/bus/bad_shape_emitter.py" in paths
    messages = " | ".join(f.message for f in rep220)
    assert "'frames'" in messages
    assert "'frame_total'" in messages


def test_dead_payload_key_fires_rep221():
    findings = findings_for(["repro/bus/bad_dead_key.py"])
    assert {f.rule for f in findings} == {"REP221"}
    assert "'reserved'" in findings[0].message


def test_phantom_payload_key_fires_rep222():
    findings = findings_for(["repro/bus/bad_phantom_key.py"])
    assert {f.rule for f in findings} == {"REP222"}
    assert "'vsync_missed'" in findings[0].message


def test_matching_bus_shapes_are_silent():
    assert rules_fired(["repro/bus/good_bus.py"]) == set()


# ----------------------------------------------------------------------
# Order-independence: the property the cache and parallel driver need
# ----------------------------------------------------------------------
ALL_FIXTURE_FILES = sorted(
    src.rel for src in collect_files([FIXTURES / "repro"], FIXTURES)
)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_findings_are_order_independent_over_shuffled_files(seed):
    rules = build_rules(None)
    baseline_files = collect_files([FIXTURES / "repro"], FIXTURES)
    baseline = finish_run(
        [analyze_file(src, rules) for src in baseline_files], rules
    )

    shuffled_rels = list(ALL_FIXTURE_FILES)
    random.Random(seed).shuffle(shuffled_rels)
    shuffled_files = collect_files(
        [FIXTURES / rel for rel in shuffled_rels], FIXTURES
    )
    by_rel = {src.rel: src for src in shuffled_files}
    ordered_as_shuffled = [by_rel[rel] for rel in shuffled_rels]
    shuffled = finish_run(
        [analyze_file(src, rules) for src in ordered_as_shuffled], rules
    )
    assert shuffled == baseline


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_call_graph_is_order_independent(seed):
    files = collect_files([FIXTURES / "repro"], FIXTURES)
    facts = [
        analyze_file(src, []).facts for src in files if src.tree is not None
    ]
    baseline = ProjectIndex.from_facts(facts).call_graph.edges()

    shuffled_facts = list(facts)
    random.Random(seed).shuffle(shuffled_facts)
    shuffled = ProjectIndex.from_facts(shuffled_facts).call_graph.edges()
    assert shuffled == baseline


def test_analysis_records_round_trip_through_json():
    """from_dict(to_dict(analysis)) feeds the project rules losslessly —
    the property the content-addressed cache depends on."""
    from repro.analysis.engine import FileAnalysis

    rules = build_rules(None)
    files = collect_files([FIXTURES / "repro"], FIXTURES)
    analyses = [analyze_file(src, rules) for src in files]
    direct = finish_run(analyses, rules)
    restored = [
        FileAnalysis.from_dict(analysis.to_dict()) for analysis in analyses
    ]
    assert finish_run(restored, rules) == direct
