"""Thread-state taxonomy and per-thread time accounting.

The states mirror what Perfetto exposes for Linux scheduling traces,
because §5 of the paper reports exactly these:

* ``RUNNING`` — on a CPU core.
* ``RUNNABLE`` — woken and waiting for a core (voluntary wait).
* ``RUNNABLE_PREEMPTED`` — forcibly descheduled while still runnable,
  either by a higher-priority wakeup or a quantum rotation with waiters.
* ``SLEEPING`` — blocked with nothing to run (interruptible sleep).
* ``UNINTERRUPTIBLE`` — blocked on I/O or direct reclaim (the Linux
  ``D`` state); this is where thrashing hurts.
* ``DEAD`` — exited or killed (terminal).
"""

from __future__ import annotations

import enum
from typing import Dict

from ..sim.clock import Time


class ThreadState(enum.Enum):
    """Scheduler-visible thread states (Perfetto naming)."""

    # Members are singletons, so the identity hash is as correct as the
    # default name hash — and C-level, which matters because the
    # accounting dicts below are hit on every state switch.
    __hash__ = object.__hash__

    RUNNING = "Running"
    RUNNABLE = "Runnable"
    RUNNABLE_PREEMPTED = "Runnable (Preempted)"
    SLEEPING = "Sleeping"
    UNINTERRUPTIBLE = "Uninterruptible Sleep"
    DEAD = "Dead"


#: States in which a thread wants (or holds) a CPU.
CPU_DEMANDING_STATES = frozenset(
    {ThreadState.RUNNING, ThreadState.RUNNABLE, ThreadState.RUNNABLE_PREEMPTED}
)


class StateAccounting:
    """Accumulates time spent per state for one thread.

    The accounting is interval-exact: ``switch`` closes the open interval
    at the current time and opens a new one, so the per-state totals of a
    finished thread partition its lifetime.
    """

    __slots__ = ("current", "since", "totals")

    def __init__(self, initial: ThreadState, start_time: Time) -> None:
        self.current = initial
        self.since: Time = start_time
        self.totals: Dict[ThreadState, Time] = {state: 0 for state in ThreadState}

    def switch(self, new_state: ThreadState, now: Time) -> Time:
        """Move to ``new_state`` at ``now``; return the closed interval length."""
        elapsed = now - self.since
        self.totals[self.current] += elapsed
        self.current = new_state
        self.since = now
        return elapsed

    def flush(self, now: Time) -> None:
        """Fold the open interval into the totals without changing state."""
        self.totals[self.current] += now - self.since
        self.since = now

    def total(self, state: ThreadState, now: Time) -> Time:
        """Total time in ``state`` including the open interval up to ``now``."""
        result = self.totals[state]
        if self.current is state:
            result += now - self.since
        return result
