"""Top-level validation entry point (backs ``repro validate``).

One call runs the whole correctness suite:

1. **Invariant-checked canonical sessions** — the three golden sessions
   execute with a :class:`~repro.validate.checkers.ValidationHarness`
   attached, collecting (not raising) violations so a report can show
   all of them.
2. **Golden-trace comparison** — each session's digest is checked
   against ``tests/golden/`` (or rewritten with ``update_golden``).
3. **Metamorphic oracles** — the monotonicity properties of
   :mod:`repro.validate.oracles`, at ``basic`` or ``deep`` repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.session import StreamingSession
from .checkers import Violation
from .golden import (
    CANONICAL_SESSIONS,
    check_trace_golden,
    diff_digests,
    golden_dir,
    load_digest,
    session_digest,
    write_digest,
)
from .oracles import OracleOutcome, run_oracles


@dataclass
class ValidationReport:
    """Everything ``repro validate`` measured."""

    level: str
    #: Invariant violations per canonical session (empty lists = clean).
    violations: Dict[str, List[Violation]] = field(default_factory=dict)
    #: Golden-digest problems per canonical session.
    golden: Dict[str, List[str]] = field(default_factory=dict)
    oracles: List[OracleOutcome] = field(default_factory=list)
    updated_golden: bool = False

    @property
    def passed(self) -> bool:
        return (
            all(not v for v in self.violations.values())
            and all(not p for p in self.golden.values())
            and all(o.passed for o in self.oracles)
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "passed": self.passed,
            "violations": {
                name: [str(v) for v in violations]
                for name, violations in self.violations.items()
            },
            "golden": self.golden,
            "oracles": [
                {"name": o.name, "passed": o.passed, "detail": o.detail}
                for o in self.oracles
            ],
            "updated_golden": self.updated_golden,
        }


def run_validation(
    level: str = "basic",
    jobs: Optional[int] = None,
    update_golden: bool = False,
    cache: Any = None,
) -> ValidationReport:
    """Run invariant checks, golden comparison, and oracles."""
    report = ValidationReport(level=level, updated_golden=update_golden)
    for name in sorted(CANONICAL_SESSIONS):
        session = StreamingSession(validate=True, **CANONICAL_SESSIONS[name])
        session.harness.raise_on_violation = False
        try:
            result = session.run()
        except Exception as exc:
            # Graceful degradation: one canonical session blowing up
            # (a harness bug, an injected fault, a broken checker
            # callback) must not abort validation of the others.  The
            # crash is recorded, the report fails readably, and the
            # remaining sessions still get checked.
            report.violations[name] = [
                *session.harness.finalize(),
                Violation(
                    session.device.sim.now,
                    "harness",
                    f"validation session crashed: {exc!r}",
                ),
            ]
            report.golden[name] = [f"no digest (session crashed: {exc!r})"]
            continue
        report.violations[name] = session.harness.finalize()
        digest = session_digest(result)
        if update_golden:
            write_digest(name, digest)
            report.golden[name] = []
            continue
        expected = load_digest(name)
        if expected is None:
            report.golden[name] = [
                f"no golden digest at {golden_dir() / (name + '.json')} "
                "(run `repro validate --update-golden`)"
            ]
        else:
            report.golden[name] = diff_digests(expected, digest)
    # Trace record/replay goldens: each canonical session re-runs with a
    # recorder attached, round-trips through the columnar store, and
    # must answer the §5 queries bit-identically from disk.
    try:
        report.golden.update(check_trace_golden(update=update_golden))
    except Exception as exc:
        report.golden["trace"] = [
            f"trace golden run crashed: {exc!r}"
        ]
    report.oracles = run_oracles(jobs=jobs, level=level, cache=cache)
    return report
