"""Bad fixture for REP110: ad-hoc ABR controllers in an experiment."""

from repro.arena.policies import build_policy
from repro.core import abr
from repro.core.abr import HybridAbr, MemoryAwareAbr


def compare_controllers(run):
    legacy = run(MemoryAwareAbr())  # 1: direct construction by name
    tuned = run(abr.BufferBasedAbr(reservoir_s=4.0))  # 2: via module attr
    contextual = run(HybridAbr(recovery_s=3.0))  # 3: shipped entrant, ad hoc
    return legacy, tuned, contextual


def good_registry(run):
    # fine: the registry path carries the policy's fingerprint
    return run(build_policy("pressure"))


def good_factory_reference(make_spec):
    # fine: passing the class as a factory is a reference, not a call
    return make_spec(abr=MemoryAwareAbr)


def good_exempted(run):
    # fine: a deliberate, visible exemption
    return run(MemoryAwareAbr())  # repro: noqa[REP110]
