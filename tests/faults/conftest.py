"""Fault-suite fixtures: every test starts with no fault plan armed."""

import pytest

from repro.faults import injector


@pytest.fixture(autouse=True)
def _no_inherited_fault_plan(monkeypatch):
    monkeypatch.delenv(injector.PLAN_ENV, raising=False)
    injector._reset_plan_cache()
    yield
    injector._reset_plan_cache()
