"""End-to-end resilience: interrupted sweeps resume; checkers are contained.

These drive the real CLI (``repro sweep``) and the real validation
harness, with faults injected at the same points real failures occur.
"""

from __future__ import annotations

from repro import cli
from repro.core.session import StreamingSession
from repro.experiments.parallel import cache_key
from repro.experiments.runner import cell_specs
from repro.faults.injector import Fault, installed_plan

SWEEP_CELL = dict(
    device="nexus5", resolution="240p", fps=30,
    pressure="normal", duration_s=4.0, repetitions=2,
)


def _sweep_args(journal):
    return [
        "sweep", "--devices", SWEEP_CELL["device"],
        "--resolutions", SWEEP_CELL["resolution"],
        "--fps", str(SWEEP_CELL["fps"]),
        "--pressures", SWEEP_CELL["pressure"],
        "--duration", str(SWEEP_CELL["duration_s"]),
        "--reps", str(SWEEP_CELL["repetitions"]),
        "--no-cache", "--journal", str(journal),
    ]


def test_interrupted_sweep_exits_130_and_resumes(tmp_path, capsys):
    """The Ctrl-C satellite: a mid-sweep interrupt drains to the
    journal, exits 130 with a resume hint, and ``--resume`` replays the
    completed job instead of re-running it."""
    journal = tmp_path / "sweep.journal"
    specs = cell_specs(**SWEEP_CELL)
    # Interrupt during the *second* job, so the first is checkpointed.
    with installed_plan(
        [Fault(point=f"job:{cache_key(specs[1])}", kind="interrupt")],
        tmp_path / "plan",
    ):
        assert cli.main(_sweep_args(journal)) == 130
    err = capsys.readouterr().err
    assert "interrupted: 1/2 jobs" in err
    assert "--resume" in err
    assert str(journal) in err

    assert cli.main(_sweep_args(journal) + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "computed 1" in out
    assert "resumed 1" in out


def test_crashing_checker_is_contained(tmp_path):
    """A checker that raises (here: by injection at its fault point) is
    disabled and recorded as a violation; the session still completes
    and — checkers being read-only — its result is unperturbed."""

    def run_session():
        session = StreamingSession(
            validate=True, device="nexus5", resolution="240p",
            frame_rate=30, pressure="normal", duration_s=4.0, seed=5,
        )
        result = session.run()
        return session, result

    _, clean = run_session()

    with installed_plan(
        [Fault(point="checker:PageConservationChecker", kind="raise")],
        tmp_path,
    ):
        session, result = run_session()
    violations = session.harness.finalize()
    crashes = [v for v in violations if "checker crashed" in str(v)]
    assert len(crashes) == 1
    assert "disabled" in str(crashes[0])
    [disabled] = [c for c in session.harness.checkers if c.disabled]
    assert type(disabled).__name__ == "PageConservationChecker"
    assert result == clean  # containment never perturbs the trajectory
