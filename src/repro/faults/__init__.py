"""Chaos-injection subsystem: deterministic fault plans for the fabric.

See :mod:`repro.faults.injector` for the fault-point machinery,
:mod:`repro.faults.chaos` for the canonical chaos scenarios behind
``repro chaos``, and ``docs/robustness.md`` for the failure model.
"""

from .injector import (
    FAULT_KINDS,
    PLAN_ENV,
    STORAGE_KINDS,
    Fault,
    FaultPlan,
    FaultPlanError,
    InjectedCrash,
    InjectedFault,
    active_plan,
    claim_storage_fault,
    installed_plan,
)

__all__ = [
    "FAULT_KINDS",
    "PLAN_ENV",
    "STORAGE_KINDS",
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "InjectedCrash",
    "InjectedFault",
    "active_plan",
    "claim_storage_fault",
    "installed_plan",
]
