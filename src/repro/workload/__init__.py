"""Memory-pressure workloads: the MP Simulator and organic background apps."""

from .apps import TOP_FREE_APPS, AppSpec, top_apps
from .background import BackgroundWorkload
from .mpsim import MPSimulator

__all__ = [
    "TOP_FREE_APPS",
    "AppSpec",
    "top_apps",
    "BackgroundWorkload",
    "MPSimulator",
]
