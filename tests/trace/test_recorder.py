"""Unit tests for the trace recorder."""

from repro.sched import SchedClass, Scheduler, ThreadState, make_cores
from repro.sim import Simulator, millis
from repro.trace.recorder import TraceRecorder


def make_traced(n_cores=1):
    sim = Simulator(seed=9)
    sched = Scheduler(sim, make_cores([1.0] * n_cores))
    recorder = TraceRecorder(sim)
    return sim, sched, recorder


def test_transitions_recorded():
    sim, sched, recorder = make_traced()
    thread = sched.spawn("worker")
    thread.post(1000)
    sim.run()
    states = [state for _, state in recorder.transitions["worker"]]
    assert ThreadState.RUNNING in states
    assert states[-1] is ThreadState.SLEEPING


def test_intervals_tile_time():
    sim, sched, recorder = make_traced()
    thread = sched.spawn("worker")
    thread.post(millis(5) * 1.0)
    sim.run(until=millis(10))
    intervals = recorder.intervals("worker")
    assert intervals[0][0] == 0
    assert intervals[-1][1] == sim.now
    for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
        assert e1 == s2


def test_interval_states_sum_matches_accounting():
    sim, sched, recorder = make_traced()
    a = sched.spawn("a")
    b = sched.spawn("b")
    a.post(millis(6) * 1.0)
    b.post(millis(6) * 1.0)
    sim.run()
    for thread in (a, b):
        running = sum(
            end - start
            for start, end, state in recorder.intervals(thread.name)
            if state is ThreadState.RUNNING
        )
        assert running == thread.time_in(ThreadState.RUNNING)


def test_preemptions_recorded_with_victor():
    sim, sched, recorder = make_traced()
    fg = sched.spawn("victim", SchedClass.FOREGROUND)
    io = sched.spawn("mmcqd", SchedClass.IO)
    fg.post(millis(20) * 1.0)
    sim.schedule(millis(2), io.post, millis(1) * 1.0)
    sim.run()
    assert any(
        victim == "victim" and victor == "mmcqd"
        for _, victim, victor, _ in recorder.preemptions
    )


def test_counter_sampling():
    sim, sched, recorder = make_traced()
    value = {"x": 0.0}
    recorder.track_counter("x", lambda: value["x"])
    recorder.start_sampling(period=millis(100))
    sim.schedule(millis(250), lambda: value.update(x=5.0))
    sim.run(until=millis(500))
    samples = recorder.counters["x"]
    assert len(samples) >= 4
    assert samples[0][1] == 0.0
    assert samples[-1][1] == 5.0


def test_migrations_counted():
    sim, sched, recorder = make_traced(n_cores=2)
    # Without forcing migration just verify the dict exists and is
    # consistent with thread counters.
    t = sched.spawn("t")
    t.post(1000)
    sim.run()
    assert recorder.migrations.get("t", 0) == t.migrations
