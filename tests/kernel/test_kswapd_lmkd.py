"""Focused behavioural tests for the kswapd and lmkd daemons."""

import pytest

from repro.device import nokia1
from repro.kernel import OomAdj, mb_to_pages
from repro.kernel.lmkd import PRESSURE_LADDER, Lmkd
from repro.sched import SchedClass, ThreadState
from repro.sim import millis, seconds


def hog_loop(device, proc, thread, chunk_mb=8.0, period=millis(50),
             hot_fraction=0.95):
    chunk = mb_to_pages(chunk_mb)

    def loop():
        if proc.alive:
            device.memory.request_pages(
                proc, thread, chunk, hot_fraction=hot_fraction,
                on_granted=lambda: device.sim.schedule(period, loop),
            )

    device.sim.schedule(0, loop)


def make_hog(device, adj=OomAdj.PERCEPTIBLE):
    proc = device.memory.spawn_process("hog", adj)
    thread = device.memory.spawn_thread(proc, "hog.main", SchedClass.FOREGROUND)
    return proc, thread


def test_kswapd_sleeps_when_memory_plentiful():
    device = nokia1(seed=91)
    device.run(until=seconds(5))
    assert not device.kswapd.active
    assert device.kswapd.thread.time_in(ThreadState.RUNNING) == 0


def test_kswapd_reclaims_back_above_low_then_sleeps():
    device = nokia1(seed=92)
    proc, thread = make_hog(device)
    low = device.memory.state.watermarks.low_pages
    device.memory.request_pages(
        proc, thread, device.memory.state.free - low + 64, hot_fraction=0.0
    )
    device.run(until=seconds(10))
    # The daemon balanced to the high watermark; the pending grant then
    # consumed part of it, so steady state sits at or above `low` with
    # kswapd asleep.
    assert device.memory.state.free >= low
    assert not device.kswapd.active
    assert device.memory.vmstat.pgsteal > 0


def test_kswapd_pays_cpu_for_reclaim():
    device = nokia1(seed=93)
    proc, thread = make_hog(device)
    hog_loop(device, proc, thread)
    device.run(until=seconds(10))
    assert device.kswapd.thread.time_in(ThreadState.RUNNING) > 0


def test_lmkd_ladder_monotone():
    floors = [adj for _, adj in PRESSURE_LADDER]
    thresholds = [p for p, _ in PRESSURE_LADDER]
    assert thresholds == sorted(thresholds, reverse=True)
    assert floors == sorted(floors)
    assert Lmkd._min_adj(50.0) is None
    assert Lmkd._min_adj(65.0) == OomAdj.CACHED_MIN
    assert Lmkd._min_adj(99.0) == OomAdj.FOREGROUND


def test_lmkd_kills_highest_adj_first():
    device = nokia1(seed=94)
    proc, thread = make_hog(device)
    hog_loop(device, proc, thread)
    device.run(until=seconds(12))
    log = device.lmkd.kill_log
    assert log, "no kills under sustained pressure"
    # Every lmkd victim was cached/background at this pressure range,
    # never a system process.
    for _, name, adj, pressure in log:
        assert adj >= OomAdj.CACHED_MIN or pressure >= 82.0
        assert not name.startswith("system")


def test_lmkd_respects_cooldown():
    device = nokia1(seed=95)
    proc, thread = make_hog(device)
    hog_loop(device, proc, thread, chunk_mb=16.0, period=millis(20))
    device.run(until=seconds(12))
    times = [t for t, _, _, _ in device.lmkd.kill_log]
    from repro.kernel.lmkd import KILL_COOLDOWN

    for a, b in zip(times, times[1:]):
        assert b - a >= KILL_COOLDOWN


def test_native_processes_never_killed():
    device = nokia1(seed=96)
    proc, thread = make_hog(device)
    hog_loop(device, proc, thread, chunk_mb=16.0)
    device.run(until=seconds(20))
    for process in device.memory.table.processes:
        if process.oom_adj < 0:
            assert process.alive, f"{process.name} was killed"
