"""Tests for QoE metrics and the DMOS psychometric model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.qoe import (
    QoeSummary,
    dmos_histogram,
    expected_dmos,
    sample_dmos_ratings,
)


def test_no_extra_drops_scores_five():
    assert expected_dmos(0.03, 0.03) == pytest.approx(5.0)
    assert expected_dmos(0.10, 0.05) == pytest.approx(5.0)  # improvement


def test_score_decreases_with_drop_delta():
    scores = [expected_dmos(0.0, d) for d in (0.0, 0.1, 0.3, 0.6, 1.0)]
    assert scores == sorted(scores, reverse=True)
    assert scores[-1] >= 1.0


@given(
    ref=st.floats(min_value=0, max_value=1),
    deg=st.floats(min_value=0, max_value=1),
)
def test_expected_dmos_bounded(ref, deg):
    score = expected_dmos(ref, deg)
    assert 1.0 <= score <= 5.0


def test_sampled_ratings_discrete_and_bounded():
    rng = np.random.default_rng(0)
    ratings = sample_dmos_ratings(0.03, 0.35, 500, rng)
    assert len(ratings) == 500
    assert all(isinstance(r, int) and 1 <= r <= 5 for r in ratings)


def test_histogram_rejects_out_of_range():
    with pytest.raises(ValueError):
        dmos_histogram([0])
    with pytest.raises(ValueError):
        dmos_histogram([6])


def test_qoe_summary_mos():
    clean = QoeSummary(drop_rate=0.0, mean_rendered_fps=30.0,
                       rebuffer_ratio=0.0, crashed=False)
    janky = QoeSummary(drop_rate=0.4, mean_rendered_fps=18.0,
                       rebuffer_ratio=0.0, crashed=False)
    dead = QoeSummary(drop_rate=0.0, mean_rendered_fps=0.0,
                      rebuffer_ratio=0.0, crashed=True)
    assert clean.mos == pytest.approx(5.0)
    assert janky.mos < clean.mos
    assert dead.mos == 1.0


def test_linear_qoe_components():
    from repro.core.qoe import LinearQoeWeights, linear_qoe

    class FakeResult:
        duration_s = 20.0
        rebuffer_s = 0.0
        drop_rate = 0.0
        crashed = False
        played_bitrates_kbps = [4000, 4000, 4000]

    assert linear_qoe(FakeResult()) == pytest.approx(4.0)

    class Switchy(FakeResult):
        played_bitrates_kbps = [1000, 8000, 1000]

    # switching magnitude (7+7)/3 Mbps subtracted from the 10/3 mean.
    expected = (10 / 3) - (14 / 3)
    assert linear_qoe(Switchy()) == pytest.approx(expected)

    class Crashy(FakeResult):
        crashed = True
        drop_rate = 0.5

    score = linear_qoe(Crashy())
    assert score < linear_qoe(FakeResult()) - 20


def test_linear_qoe_empty_session():
    from repro.core.qoe import linear_qoe

    class Nothing:
        duration_s = 10.0
        rebuffer_s = 0.0
        drop_rate = 0.0
        crashed = True
        played_bitrates_kbps = []

    assert linear_qoe(Nothing()) == -20.0


def test_played_bitrates_recorded_in_session():
    from repro.core.session import StreamingSession

    result = StreamingSession(
        device="nexus5", resolution="480p", frame_rate=30,
        duration_s=8.0, seed=21,
    ).run()
    assert result.played_bitrates_kbps
    assert all(kbps == 2500 for kbps in result.played_bitrates_kbps)
