"""Integration tests for the video player on simulated devices."""

import pytest

from repro.device import nexus5, nokia1
from repro.sim import seconds
from repro.video import VideoPlayer, default_video
from repro.video.clients import exoplayer
from repro.video.encoding import GENRES, VideoAsset


def play(device, resolution="480p", fps=30, duration=10.0, client=None, abr=None):
    player = VideoPlayer(
        device, default_video(duration_s=duration), resolution, fps,
        client=client, abr=abr,
    )
    player.start()
    while not player.finished and device.sim.now < seconds(duration * 8):
        device.run(until=device.sim.now + seconds(1))
    return player


def test_clean_playback_renders_nearly_all_frames():
    device = nexus5(seed=42)
    player = play(device, "480p", 30, duration=10.0)
    result = player.result
    assert result.frames_processed == 300
    assert result.frames_rendered >= 295
    assert not result.crashed
    device.memory.check_consistency()


def test_frame_accounting_balances():
    device = nexus5(seed=42)
    player = play(device, "720p", 60, duration=10.0)
    stats = player.pipeline.stats
    assert stats.frames_rendered + stats.frames_dropped == stats.frames_processed


def test_pss_grows_with_resolution():
    lo = play(nexus5(seed=1), "240p", 30, duration=8.0).result
    hi = play(nexus5(seed=1), "1080p", 30, duration=8.0).result
    assert hi.pss_mean_mb > lo.pss_mean_mb + 20


def test_pss_grows_with_frame_rate():
    lo = play(nexus5(seed=1), "720p", 30, duration=8.0).result
    hi = play(nexus5(seed=1), "720p", 60, duration=8.0).result
    assert hi.pss_mean_mb > lo.pss_mean_mb


def test_exoplayer_has_smaller_footprint():
    firefox_run = play(nexus5(seed=2), "480p", 30, duration=8.0).result
    exo_run = play(nexus5(seed=2), "480p", 30, duration=8.0,
                   client=exoplayer()).result
    assert exo_run.pss_mean_mb < firefox_run.pss_mean_mb - 50


def test_entry_device_struggles_at_1080p60():
    player = play(nokia1(seed=3), "1080p", 60, duration=10.0)
    assert player.result.drop_rate > 0.5


def test_throughput_history_recorded():
    device = nexus5(seed=4)
    player = play(device, "480p", 30, duration=10.0)
    assert player.throughput_history
    assert player.estimated_throughput_mbps() > 0


def test_rendered_fps_capped_at_encoding_rate():
    device = nexus5(seed=5)
    player = play(device, "480p", 30, duration=10.0)
    assert all(fps <= 31 for fps in player.result.fps_series)


def test_set_representation_switches_future_segments():
    device = nexus5(seed=6)
    asset = VideoAsset("t", GENRES["travel"], 12.0, frame_rates=(24, 60))
    player = VideoPlayer(device, asset, "480p", 60)
    player.start()
    device.run(until=seconds(2))
    player.set_representation("480p", 24, flush=True)
    while not player.finished and device.sim.now < seconds(60):
        device.run(until=device.sim.now + seconds(1))
    assert player.result.switch_log
    # Late bins render at 24 FPS, not 60.
    tail = player.result.fps_series[-4:-1]
    assert all(fps <= 25 for fps in tail)
    device.memory.check_consistency()


def test_set_representation_same_rep_is_noop():
    device = nexus5(seed=7)
    player = VideoPlayer(device, default_video(duration_s=8.0), "480p", 30)
    player.start()
    player.set_representation("480p", 30)
    assert player.result.switch_log == []


def test_session_end_emits_event():
    device = nexus5(seed=8)
    ended = []
    device.sim.on("session.end", lambda time, player: ended.append(time))
    play(device, "240p", 30, duration=8.0)
    assert len(ended) == 1


# ----------------------------------------------------------------------
# SessionResult edge cases: zero rendered frames must never report a
# flawless session (regression tests for the degenerate-schedule fixes
# in effective_drop_rate / mean_rendered_fps).
# ----------------------------------------------------------------------
def make_result(**overrides):
    from repro.video.player import SessionResult

    base = dict(
        device_name="nexus5", client_name="firefox", resolution="480p",
        fps=60, genre="travel", duration_s=10.0,
    )
    base.update(overrides)
    return SessionResult(**base)


def test_mean_rendered_fps_is_zero_without_samples():
    assert make_result().mean_rendered_fps == 0.0
    assert make_result(fps_series=[30.0, 60.0]).mean_rendered_fps == 45.0


def test_effective_drop_rate_counts_unplayed_frames_after_crash():
    crashed = make_result(frames_rendered=300, crashed=True)
    assert crashed.effective_drop_rate == pytest.approx(0.5)


def test_effective_drop_rate_clamps_overdelivery_to_zero():
    # An ABR upswitch can render more frames than the nominal schedule;
    # the rate clamps at 0 instead of going negative.
    eager = make_result(frames_rendered=700)
    assert eager.effective_drop_rate == 0.0


@pytest.mark.parametrize("overrides,expected", [
    # Crash before any frame was due: total loss, not a perfect run.
    (dict(duration_s=0.0, crashed=True), 1.0),
    # Frames entered the pipeline but none rendered: total loss.
    (dict(duration_s=0.0, frames_processed=12), 1.0),
    # Frames processed AND rendered with a zero schedule: fall back on
    # the pipeline's own measured drop rate.
    (dict(duration_s=0.0, frames_processed=10, frames_rendered=8,
          drop_rate=0.2), 0.2),
    # Genuinely empty session: nothing scheduled, nothing lost.
    (dict(duration_s=0.0), 0.0),
    # Sub-frame duration rounds the schedule to zero frames.
    (dict(duration_s=0.004, crashed=True), 1.0),
])
def test_effective_drop_rate_degenerate_schedules(overrides, expected):
    assert make_result(**overrides).effective_drop_rate == expected


def test_killed_at_critical_reports_total_loss_not_zero():
    """The paper's ~100% bars at Critical: a session killed before its
    first rendered frame must report drop rate 1.0 and fps 0.0."""
    victim = make_result(
        duration_s=30.0, crashed=True, crash_time_s=0.2,
        frames_processed=5, frames_rendered=0,
    )
    assert victim.effective_drop_rate == 1.0
    assert victim.mean_rendered_fps == 0.0
