"""Multi-core preemptive priority scheduler.

The model captures the three scheduling facts §5 of the paper hinges on:

1. *mmcqd* (storage I/O daemon) runs in a strictly higher scheduling
   class than foreground threads, so its wakeups **preempt** video
   threads (``Runnable (Preempted)`` time, Table 5).
2. *kswapd* runs in the **same** class as foreground threads, so video
   threads must fair-share the CPU with it rather than being preempted
   by it (§5 "the CPU is almost never preempted for kswapd").
3. Threads blocked on disk I/O or direct reclaim sit in
   ``Uninterruptible Sleep`` and render nothing while they wait.

Work is expressed in reference microseconds (see :mod:`repro.sched.cpu`).
A thread executes a FIFO queue of work items; ``CpuWork`` consumes core
time and ``IoWait`` blocks the thread until an external completion.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..sim.clock import Time, millis
from ..sim.engine import Simulator
from .cpu import Core
from .states import StateAccounting, ThreadState

#: Default scheduling quantum (round-robin slice) in ticks.
DEFAULT_QUANTUM: Time = millis(4)


class SchedClass(enum.IntEnum):
    """Strict priority classes; lower value always runs first.

    ``IO`` models the elevated priority of block-I/O kernel threads
    (mmcqd); ``FOREGROUND`` holds app threads *and* kswapd, per the
    paper's observation that they share the CPU fairly; ``BACKGROUND``
    is for cached/background app threads.
    """

    IO = 0
    FOREGROUND = 1
    BACKGROUND = 2
    IDLE = 3


class CpuWork:
    """A unit of CPU work: ``ref_us`` microseconds on a 1 GHz core."""

    __slots__ = ("remaining", "on_complete", "label")

    def __init__(
        self,
        ref_us: float,
        on_complete: Optional[Callable[[], None]] = None,
        label: str = "",
    ) -> None:
        if ref_us <= 0:
            raise ValueError(f"work must be positive, got {ref_us}")
        self.remaining = float(ref_us)
        self.on_complete = on_complete
        self.label = label


class IoWait:
    """A blocking point: the thread sleeps uninterruptibly until
    :meth:`Scheduler.io_complete` is called for it.

    ``start`` is invoked exactly once, when the wait reaches the head of
    the thread's queue — typically it issues the storage request.
    """

    __slots__ = ("start", "on_complete", "label", "started")

    def __init__(
        self,
        start: Callable[[], None],
        on_complete: Optional[Callable[[], None]] = None,
        label: str = "io",
    ) -> None:
        self.start = start
        self.on_complete = on_complete
        self.label = label
        self.started = False


class Thread:
    """A schedulable thread.

    Threads are created via :meth:`Scheduler.spawn`.  Components drive
    them exclusively through :meth:`post` (enqueue work) — all state
    transitions are owned by the scheduler.
    """

    __slots__ = (
        "name", "sched_class", "scheduler", "process", "queue",
        "accounting", "last_core", "slice_label", "allowed_cores",
        "migrations", "preemptions_suffered", "dead",
    )

    def __init__(
        self,
        name: str,
        sched_class: SchedClass,
        scheduler: "Scheduler",
        process: Any = None,
    ) -> None:
        self.name = name
        self.sched_class = sched_class
        self.scheduler = scheduler
        self.process = process
        self.queue: Deque[Any] = deque()
        self.accounting = StateAccounting(ThreadState.SLEEPING, scheduler.sim.now)
        self.last_core: Optional[int] = None
        #: Precomputed event label for this thread's slice events (the
        #: scheduler arms one per quantum — formatting it every time
        #: shows up in profiles).
        self.slice_label = f"slice:{name}"
        #: Restrict scheduling to these core indices (None = any core).
        #: Implements the §7 suggestion of coordinating daemon/core
        #: placement to cut migration overhead.
        self.allowed_cores: Optional[frozenset] = None
        self.migrations = 0
        self.preemptions_suffered = 0
        self.dead = False

    # -- convenience -----------------------------------------------------
    @property
    def state(self) -> ThreadState:
        return self.accounting.current

    def post(
        self,
        ref_us: float,
        on_complete: Optional[Callable[[], None]] = None,
        label: str = "",
    ) -> None:
        """Enqueue CPU work and wake the thread if it is sleeping."""
        self.scheduler.post(self, CpuWork(ref_us, on_complete, label))

    def post_io(
        self,
        start: Callable[[], None],
        on_complete: Optional[Callable[[], None]] = None,
        label: str = "io",
    ) -> None:
        """Enqueue a blocking I/O wait (see :class:`IoWait`)."""
        self.scheduler.post(self, IoWait(start, on_complete, label))

    def pin_to(self, core_indices) -> None:
        """Restrict this thread to a set of cores (CPU affinity)."""
        self.allowed_cores = frozenset(core_indices)

    def time_in(self, state: ThreadState) -> Time:
        """Total ticks this thread has spent in ``state`` so far."""
        return self.accounting.total(state, self.scheduler.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Thread {self.name} {self.state.value}>"


class Scheduler:
    """Priority scheduler over a fixed set of cores."""

    def __init__(
        self,
        sim: Simulator,
        cores: List[Core],
        quantum: Time = DEFAULT_QUANTUM,
    ) -> None:
        if not cores:
            raise ValueError("at least one core is required")
        self.sim = sim
        self.cores = cores
        self.quantum = quantum
        self.threads: List[Thread] = []
        self._runqueues: Dict[SchedClass, Deque[Thread]] = {
            cls: deque() for cls in SchedClass
        }
        # Priority-ordered view of the runqueues: hot paths index this
        # tuple instead of hashing SchedClass members on every dispatch.
        self._rq: tuple = tuple(self._runqueues[cls] for cls in SchedClass)
        self.context_switches = 0
        self.preemption_count = 0
        #: Cores currently running an elided (fast-forwarded) slice
        #: chain; see :meth:`_arm_slice_end`.
        self._elided_count = 0
        #: Interior quantum boundaries that were retired analytically
        #: instead of firing a ``slice_end`` event (perf telemetry).
        self.elided_slices = 0

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        sched_class: SchedClass = SchedClass.FOREGROUND,
        process: Any = None,
    ) -> Thread:
        """Create a thread, initially sleeping with an empty work queue."""
        thread = Thread(name, sched_class, self, process)
        self.threads.append(thread)
        return thread

    def kill(self, thread: Thread) -> None:
        """Terminate a thread: drop queued work, free its core if running."""
        if thread.dead:
            return
        # Re-chop elided slices first: the accounting below (and the
        # dispatch that follows) needs every core's busy_time,
        # slice_started, and slice event to be live.  Must happen
        # before the queue is cleared — replay reads the head item.
        if self._elided_count:
            self._materialize_all()
        thread.dead = True
        thread.queue.clear()
        if thread.state is ThreadState.RUNNING:
            core = self._core_of(thread)
            self._stop_slice(core, retire=True)
            self._transition(thread, ThreadState.DEAD)
            core.current = None
            self._dispatch()
        else:
            self._remove_from_runqueue(thread)
            self._transition(thread, ThreadState.DEAD)

    # ------------------------------------------------------------------
    # Work submission
    # ------------------------------------------------------------------
    def post(self, thread: Thread, item: Any) -> None:
        """Enqueue a work item; wake the thread when appropriate."""
        if thread.dead:
            return
        thread.queue.append(item)
        if thread.accounting.current is ThreadState.SLEEPING:
            self._advance(thread)

    def io_complete(self, thread: Thread) -> None:
        """Signal completion of the IoWait at the head of ``thread``'s queue."""
        if thread.dead:
            return
        if not thread.queue or not isinstance(thread.queue[0], IoWait):
            raise RuntimeError(f"{thread.name}: io_complete with no pending IoWait")
        item = thread.queue.popleft()
        if item.on_complete is not None:
            item.on_complete()
        if thread.state is ThreadState.UNINTERRUPTIBLE:
            self._advance(thread)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _advance(self, thread: Thread) -> None:
        """Process the head of ``thread``'s queue from an idle state."""
        if thread.dead:
            return
        queue = thread.queue
        if queue:
            item = queue[0]
            if isinstance(item, IoWait):
                if not item.started:
                    item.started = True
                    self._transition(thread, ThreadState.UNINTERRUPTIBLE)
                    item.start()
                # Else: already started and not yet complete — stay
                # blocked.
                return
        else:
            if thread.accounting.current is not ThreadState.SLEEPING:
                self._transition(thread, ThreadState.SLEEPING)
            return
        # Head is CPU work: become runnable and try to get a core.
        if thread.accounting.current not in (
            ThreadState.RUNNABLE,
            ThreadState.RUNNABLE_PREEMPTED,
            ThreadState.RUNNING,
        ):
            # A thread is entering a runqueue: every elided core this
            # thread could rotate with or preempt must re-arm real
            # quanta first, so those decisions see live slice state.
            # Cores running strictly higher-priority threads are
            # untouchable by this waiter (the explicit chain would
            # re-arm through it without consulting them) and stay
            # elided.
            if self._elided_count:
                self._materialize_lower(thread.sched_class)
            sim = self.sim
            if not sim.tracing:
                rq = self._rq
                if not (rq[0] or rq[1] or rq[2] or rq[3]):
                    core = self._pick_core(thread)
                    if core is not None:
                        # Fast path: nothing else is runnable anywhere
                        # and an idle core takes the thread immediately.
                        # The explicit route — RUNNABLE for zero ticks,
                        # runqueue append, dispatch scan, remove — is
                        # pure bookkeeping with identical accounting
                        # (the skipped RUNNABLE interval has zero
                        # length), so go straight to the slice.  With
                        # tracing on we keep the explicit route so the
                        # wakeup/state event stream is unchanged.
                        self._start_slice(thread, core)
                        return
            self._transition(thread, ThreadState.RUNNABLE)
            self._rq[thread.sched_class].append(thread)
            if sim.tracing:
                sim.emit("sched.wakeup", thread=thread)
        self._dispatch()

    def _transition(self, thread: Thread, new_state: ThreadState) -> None:
        accounting = thread.accounting
        old = accounting.current
        if old is new_state:
            return
        # StateAccounting.switch inlined (hot: every dispatch/rotation
        # transitions at least two threads); keep in lockstep.
        now = self.sim.now
        accounting.totals[old] += now - accounting.since
        accounting.current = new_state
        accounting.since = now
        if self.sim.tracing:
            self.sim.emit("sched.state", thread=thread, old=old, new=new_state)

    def _core_of(self, thread: Thread) -> Core:
        for core in self.cores:
            if core.current is thread:
                return core
        raise RuntimeError(f"{thread.name} marked RUNNING but on no core")

    def _remove_from_runqueue(self, thread: Thread) -> None:
        queue = self._rq[thread.sched_class]
        try:
            queue.remove(thread)
        except ValueError:
            pass

    def _next_runnable(self) -> Optional[Thread]:
        for queue in self._rq:
            if queue:
                return queue[0]
        return None

    def _take_runnable(self) -> Optional[Thread]:
        for queue in self._rq:
            if queue:
                return queue.popleft()
        return None

    def _allowed(self, thread: Thread, core: Core) -> bool:
        return thread.allowed_cores is None or core.index in thread.allowed_cores

    def _pick_core(self, thread: Thread) -> Optional[Core]:
        """Prefer the thread's previous core (cache warmth), else the
        fastest idle core the thread's affinity mask allows."""
        if thread.last_core is not None:
            previous = self.cores[thread.last_core]
            if previous.current is None and self._allowed(thread, previous):
                return previous
        allowed = thread.allowed_cores
        best: Optional[Core] = None
        for core in self.cores:
            if core.current is not None:
                continue
            if allowed is not None and core.index not in allowed:
                continue
            if (
                best is None
                or core.freq_ghz > best.freq_ghz
                or (core.freq_ghz == best.freq_ghz and core.index < best.index)
            ):
                best = core
        return best

    def _dispatch(self) -> None:
        """Fill idle cores, then preempt lower-class threads if needed.

        Candidates are visited in priority-then-FIFO order.  A candidate
        whose affinity mask blocks placement is skipped (no head-of-line
        blocking); an *unrestricted* candidate that cannot be placed
        ends the pass — nothing behind it could be placed either.
        """
        placed = True
        while placed:
            placed = False
            for queue in self._rq:
                if not queue:
                    continue
                # Iterating the live deque is safe: the loop breaks
                # immediately after any mutation (remove/preempt/start).
                for thread in queue:
                    core = self._pick_core(thread)
                    if core is None:
                        # Victim selection compares live slice state
                        # (class, slice_started): re-chop any elided
                        # core this candidate could displace first.
                        if self._elided_count:
                            self._materialize_lower(thread.sched_class)
                        victim_core = self._preemption_victim(
                            thread.sched_class, thread
                        )
                        if victim_core is None:
                            if thread.allowed_cores is None:
                                return
                            continue  # affinity-blocked: try the next
                        queue.remove(thread)
                        self._preempt(victim_core, thread)
                    else:
                        queue.remove(thread)
                        self._start_slice(thread, core)
                    placed = True
                    break
                if placed:
                    break

    def _preemption_victim(
        self, sched_class: SchedClass, candidate: Thread
    ) -> Optional[Core]:
        """Find the running thread of the lowest priority strictly below
        ``sched_class`` on a core ``candidate`` may use; ties broken
        towards the longest-running slice."""
        victim: Optional[Core] = None
        for core in self.cores:
            running = core.current
            if running is None or running.sched_class <= sched_class:
                continue
            if not self._allowed(candidate, core):
                continue
            if (
                victim is None
                or running.sched_class > victim.current.sched_class
                or (
                    running.sched_class == victim.current.sched_class
                    and core.slice_started < victim.slice_started
                )
            ):
                victim = core
        return victim

    def _preempt(self, core: Core, victor: Thread) -> None:
        victim = core.current
        assert victim is not None
        self._stop_slice(core, retire=True)
        self._transition(victim, ThreadState.RUNNABLE_PREEMPTED)
        victim.preemptions_suffered += 1
        self.preemption_count += 1
        self._rq[victim.sched_class].append(victim)
        core.current = None
        if self.sim.tracing:
            self.sim.emit(
                "sched.preempt", victim=victim, victor=victor, core=core.index,
                kind="preempt",
            )
        self._start_slice(victor, core)

    def _start_slice(self, thread: Thread, core: Core) -> None:
        assert core.idle, f"core {core.index} busy"
        if not thread.queue or not isinstance(thread.queue[0], CpuWork):
            # The thread was requeued while its last work item finished
            # (mid-handler preemption): nothing to run after all.
            self._transition(thread, ThreadState.SLEEPING)
            self._advance(thread)
            self._dispatch()
            return
        if thread.last_core is not None and thread.last_core != core.index:
            thread.migrations += 1
            if self.sim.tracing:
                self.sim.emit(
                    "sched.migrate",
                    thread=thread,
                    src=thread.last_core,
                    dst=core.index,
                )
        thread.last_core = core.index
        core.current = thread
        core.slice_started = self.sim.now
        self._transition(thread, ThreadState.RUNNING)
        self.context_switches += 1
        if self.sim.tracing:
            self.sim.emit("sched.switch", thread=thread, core=core.index)
        self._arm_slice_end(core)

    def _arm_slice_end(self, core: Core) -> None:
        # Same invariant as _slice_end: current thread's head is CpuWork.
        thread = core.current
        item = thread.queue[0]
        # Core.work_to_time inlined here and in the replay loop below
        # (hot: once per armed slice); keep in lockstep with cpu.py.
        freq = core.freq_ghz
        quantum = self.quantum
        to_finish = round(item.remaining / freq)
        if to_finish < 1:
            to_finish = 1
        core.slice_started = self.sim.now
        if to_finish > quantum and self._elidable(thread.sched_class):
            # Quantum elision: the work spans multiple quanta and no
            # queued thread could rotate with or preempt this core
            # (every waiter, if any, has strictly lower priority — the
            # explicit chain would re-arm straight through it), so the
            # round-robin boundaries are pure bookkeeping.
            # Schedule the completion directly and fast-forward; the
            # moment anything becomes runnable, _materialize_all
            # re-chops the in-flight chain at the exact boundary the
            # explicit chain would be on.  The completion time is the
            # sum of the chopped chain's slices — computed with the
            # same float operations _slice_end would perform, so the
            # elided chain is bit-identical to the explicit one.
            span: Time = 0
            remaining = item.remaining
            while True:
                run = round(remaining / freq)
                if run < 1:
                    run = 1
                if run > quantum:
                    run = quantum
                span += run
                remaining -= run * freq
                if remaining <= 1e-9:
                    break
            core.elide_from = self.sim.now
            core.elide_work = item.remaining
            core.slice_end_event = None
            core.elide_event = self.sim.schedule(
                span, self._elided_end, core, label=thread.slice_label
            )
            self._elided_count += 1
            return
        core.slice_end_event = self.sim.schedule(
            to_finish if to_finish < quantum else quantum,
            self._slice_end, core, label=thread.slice_label,
        )

    def _replay_elided(self, core: Core) -> Time:
        """Fast-forward an elided core's accounting to the state the
        explicit slice chain would hold at ``sim.now``.

        Retires every quantum boundary strictly before now (the
        explicit chain's ``_slice_end`` at such a boundary has already
        run from now's perspective: any event observing the core at
        ``now`` was scheduled after the boundary's slice event and so
        fires after it), leaving ``busy_time``, ``slice_started``, and
        the head item's ``remaining`` exactly as the chain would.
        Returns the end time of the in-flight slice (>= now).
        """
        now = self.sim.now
        thread = core.current
        assert thread is not None and thread.queue
        item = thread.queue[0]
        assert isinstance(item, CpuWork)
        start = core.elide_from
        remaining = core.elide_work
        quantum = self.quantum
        freq = core.freq_ghz
        eliminated = 0
        while True:
            run = round(remaining / freq)
            if run < 1:
                run = 1
            if run > quantum:
                run = quantum
            end = start + run
            if end >= now:
                break
            remaining -= run * freq
            start = end
            eliminated += 1
        self.elided_slices += eliminated
        core.busy_time += start - core.elide_from
        core.slice_started = start
        item.remaining = remaining
        return end

    def _materialize(self, core: Core) -> None:
        """Re-chop one elided core: retire passed boundaries and arm a
        real ``slice_end`` for the in-flight slice."""
        end = self._replay_elided(core)
        self.sim.cancel(core.elide_event)  # type: ignore[arg-type]
        core.elide_event = None
        self._elided_count -= 1
        thread = core.current
        assert thread is not None
        core.slice_end_event = self.sim.schedule(
            end - self.sim.now, self._slice_end, core,
            label=thread.slice_label,
        )

    def _elidable(self, sched_class: SchedClass) -> bool:
        """True when no queued thread could rotate with or preempt a
        thread of ``sched_class`` (i.e. every waiter is strictly lower
        priority)."""
        rq = self._rq
        for index in range(sched_class + 1):
            if rq[index]:
                return False
        return True

    def _materialize_all(self) -> None:
        for core in self.cores:
            if core.elide_event is not None:
                self._materialize(core)

    def _materialize_lower(self, sched_class: SchedClass) -> None:
        """Re-chop every elided core a waiter of ``sched_class`` could
        interact with (equal class: rotation; lower priority:
        preemption).  Cores running strictly higher-priority threads
        stay elided."""
        for core in self.cores:
            if core.elide_event is not None:
                current = core.current
                assert current is not None
                if current.sched_class >= sched_class:
                    self._materialize(core)

    def _elided_end(self, core: Core) -> None:
        """The elided chain's completion event: replay the interior
        boundaries, then finish exactly as the last explicit
        ``_slice_end`` of the chain would."""
        core.elide_event = None
        self._elided_count -= 1
        self._replay_elided(core)
        self._slice_end(core)

    def _stop_slice(self, core: Core, retire: bool) -> None:
        """Cancel the pending slice-end event, optionally retiring the work
        executed so far in the open slice.

        When no slice event is armed we are inside this core's own
        ``_slice_end`` handler, which has already retired the elapsed
        work — retiring again would double-count it.
        """
        if core.elide_event is not None:
            # Defensive: every stop path materializes beforehand, but
            # an elided core must never be torn down with stale state.
            self._materialize(core)
        if core.slice_end_event is None:
            return
        self.sim.cancel(core.slice_end_event)
        core.slice_end_event = None
        if retire and core.current is not None:
            elapsed = self.sim.now - core.slice_started
            core.busy_time += elapsed
            if elapsed > 0 and core.current.queue:
                item = core.current.queue[0]
                if isinstance(item, CpuWork):
                    item.remaining -= elapsed * core.freq_ghz

    def _slice_end(self, core: Core) -> None:
        # Invariants (checked by the armed-slice contract, not asserts —
        # this is the hottest handler in the simulator): the core runs a
        # live thread whose queue head is the CpuWork being sliced.
        thread = core.current
        core.slice_end_event = None
        elapsed = self.sim.now - core.slice_started
        core.busy_time += elapsed
        item = thread.queue[0]
        item.remaining -= elapsed * core.freq_ghz

        if item.remaining <= 1e-9:
            thread.queue.popleft()
            if item.on_complete is not None:
                item.on_complete()
            if thread.dead:
                # on_complete (or a preceding callback) killed the thread.
                if core.current is thread:
                    core.current = None
                self._dispatch()
                return
            if core.current is not thread:
                # on_complete re-entered the scheduler (a wakeup preempted
                # this very core, or a kill freed it); the nested call
                # already made all scheduling decisions for this core.
                self._dispatch()
                return

        # Decide what happens to the core next.
        has_more_cpu_work = bool(thread.queue) and isinstance(thread.queue[0], CpuWork)
        # _next_runnable inlined (hot; keep in lockstep).
        waiter = None
        for rq_queue in self._rq:
            if rq_queue:
                waiter = rq_queue[0]
                break
        must_rotate = waiter is not None and waiter.sched_class <= thread.sched_class

        if has_more_cpu_work and not must_rotate:
            self._arm_slice_end(core)
            return

        core.current = None
        if has_more_cpu_work:
            # Involuntary rotation: still runnable but descheduled.
            # The thread re-enters the runqueue, so any elided core it
            # could interact with must re-arm real quanta first.
            if self._elided_count:
                self._materialize_lower(thread.sched_class)
            self._transition(thread, ThreadState.RUNNABLE_PREEMPTED)
            thread.preemptions_suffered += 1
            self.preemption_count += 1
            self._rq[thread.sched_class].append(thread)
            if self.sim.tracing:
                self.sim.emit(
                    "sched.preempt", victim=thread, victor=waiter,
                    core=core.index, kind="rotate",
                )
        else:
            # Out of CPU work: block on IO, or sleep.  With an empty
            # queue _advance would be a no-op (already SLEEPING), so
            # only call it when an IoWait is pending.
            self._transition(thread, ThreadState.SLEEPING)
            if thread.queue:
                self._advance(thread)
        self._dispatch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _elided_accrued(self, core: Core) -> Time:
        """Busy time an elided core's chain has retired since
        ``elide_from`` (read-only replay; boundaries strictly before
        now, matching :meth:`_replay_elided`)."""
        now = self.sim.now
        start = core.elide_from
        remaining = core.elide_work
        quantum = self.quantum
        freq = core.freq_ghz
        while True:
            run = round(remaining / freq)
            if run < 1:
                run = 1
            if run > quantum:
                run = quantum
            if start + run >= now:
                break
            remaining -= run * freq
            start += run
        return start - core.elide_from

    def utilization(self, horizon: Time) -> float:
        """Mean fraction of core time spent busy over ``horizon`` ticks."""
        if horizon <= 0:
            return 0.0
        busy = sum(core.busy_time for core in self.cores)
        if self._elided_count:
            busy += sum(
                self._elided_accrued(core)
                for core in self.cores
                if core.elide_event is not None
            )
        return busy / (horizon * len(self.cores))
