"""Unit tests for vmstat counters and the lmkd pressure metric."""

from repro.kernel.vmstat import VmStat
from repro.sim import seconds


def test_pressure_zero_without_scans():
    stat = VmStat()
    assert stat.pressure(seconds(10)) == 0.0


def test_pressure_formula():
    stat = VmStat()
    stat.record_scan(seconds(1), scanned=100, reclaimed=40)
    assert stat.pressure(seconds(1.5)) == 60.0


def test_pressure_window_expires_old_entries():
    stat = VmStat()
    stat.record_scan(seconds(1), scanned=100, reclaimed=0)   # P=100 burst
    stat.record_scan(seconds(3), scanned=100, reclaimed=100)  # fully reclaimed
    # At t=3.5 only the second batch is inside the 1-second window.
    assert stat.pressure(seconds(3.5)) == 0.0


def test_pressure_aggregates_within_window():
    stat = VmStat()
    stat.record_scan(seconds(1.0), scanned=100, reclaimed=100)
    stat.record_scan(seconds(1.5), scanned=100, reclaimed=0)
    assert stat.pressure(seconds(1.8)) == 50.0


def test_pressure_clamps_reclaimed_over_scanned():
    stat = VmStat()
    # Writeback completions report reclaimed pages with zero scans.
    stat.record_scan(seconds(1), scanned=10, reclaimed=0)
    stat.record_scan(seconds(1.2), scanned=0, reclaimed=50)
    assert stat.pressure(seconds(1.5)) == 0.0


def test_counters_accumulate():
    stat = VmStat()
    stat.record_scan(0, 10, 5)
    stat.record_scan(1, 10, 5)
    assert stat.pgscan == 20
    assert stat.pgsteal == 10
