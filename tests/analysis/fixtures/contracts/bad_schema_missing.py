"""REP204 fixture: SCHEMA_VERSION without a companion fingerprint."""

from dataclasses import dataclass

SCHEMA_VERSION = 3


@dataclass
class SessionResult:
    device_name: str
    frames_rendered: int
    crashed: bool
