"""Bad fixture for REP111: artifact writes that bypass repro.storage."""

import gzip
import os


def builtin_open(path, payload):
    with open(path, "w") as fh:  # 1: bare write-mode open
        fh.write(payload)


def gzip_module_open(path, blob):
    with gzip.open(path, mode="wb") as fh:  # 2: module opener, mode kwarg
        fh.write(blob)


def fd_open(fd, payload):
    with os.fdopen(fd, "w") as fh:  # 3: fdopen publishes unfsynced
        fh.write(payload)


def pathlib_open(path, payload):
    with path.open("a") as fh:  # 4: method-style append still mutates
        fh.write(payload)


def pathlib_write_bytes(path, blob):
    path.write_bytes(blob)  # 5: non-atomic whole-file publish


def pathlib_write_text(path, payload):
    path.write_text(payload)  # 6: non-atomic whole-file publish


def good_read_mode(path):
    with open(path, "r") as fh:  # fine: reads cannot tear an artifact
        return fh.read()


def good_default_read(path):
    with path.open() as fh:  # fine: default mode is "r"
        return fh.read()


def good_dynamic_mode(path, mode):
    with open(path, mode) as fh:  # fine: non-literal mode is not guessed
        return fh

def good_exempted(path, payload):
    # Scratch file for a test double; durability deliberately waived.
    path.write_text(payload)  # repro: noqa[REP111]
