"""REP201 fixture: a subscription with no emit site anywhere."""


def attach(bus) -> None:
    bus.on("io.complete", handle)
    bus.emit("io.started", when=0)


def handle(time, **payload) -> None:
    pass
