"""Degraded filesystems: read-only cache dirs and full disks.

The acceptance property (ISSUE/docs/robustness.md): a read-only
``REPRO_CACHE_DIR`` degrades to uncached operation with a single
warning, and ENOSPC mid-publish leaves no partial artifact behind.
Both conditions are injected deterministically through the storage
fault plan (``chmod`` is useless under root, and real full disks do
not fit in CI).
"""

from __future__ import annotations

import warnings

import pytest

from repro.experiments.parallel import ResultCache
from repro.faults.injector import Fault, installed_plan
from repro.storage import scrub


def readonly_plan(tmp_path, count=1):
    faults = [
        Fault(point="storage:result-cache", kind="readonly")
        for _ in range(count)
    ]
    return installed_plan(faults, tmp_path / "ledger")


def test_readonly_cache_degrades_to_uncached_with_one_warning(tmp_path):
    store = ResultCache(tmp_path / "cache", result_type=dict)
    with readonly_plan(tmp_path, count=3):
        with pytest.warns(RuntimeWarning, match="falling back to uncached"):
            store.put("a" * 40, {"seed": 1})
        assert store.report.readonly_fallbacks == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            store.put("b" * 40, {"seed": 2})  # disabled: silently skipped
    # Nothing was cached; reads are plain misses, never errors.
    assert store.get("a" * 40) is None
    assert store.misses == 1
    # Only the (harmless) fan-out directory was created, no files.
    assert [p for p in (tmp_path / "cache").rglob("*") if p.is_file()] == []


def test_readonly_store_recovers_on_a_writable_rerun(tmp_path):
    root = tmp_path / "cache"
    crippled = ResultCache(root, result_type=dict)
    with readonly_plan(tmp_path):
        with pytest.warns(RuntimeWarning):
            crippled.put("c" * 40, {"seed": 3})
    # A fresh store over the same directory (next run) caches normally.
    healthy = ResultCache(root, result_type=dict)
    healthy.put("c" * 40, {"seed": 3})
    assert healthy.get("c" * 40) == {"seed": 3}
    assert scrub([root]).clean


def test_enospc_leaves_no_partial_artifact_and_no_orphans(tmp_path):
    root = tmp_path / "cache"
    store = ResultCache(root, result_type=dict)
    with installed_plan(
        [Fault(point="storage:result-cache", kind="enospc")],
        tmp_path / "ledger",
    ):
        store.put("d" * 40, {"seed": 4})  # swallowed: caching is optional
    assert store.report.publish_errors == 1
    assert store.report.readonly_fallbacks == 0  # transient, not disabling
    assert store.get("d" * 40) is None
    files = [p for p in root.rglob("*") if p.is_file()]
    assert files == []
    assert scrub([root]).clean

    # The disk "drained"; the same store publishes fine afterwards.
    store.put("d" * 40, {"seed": 4})
    assert store.get("d" * 40) == {"seed": 4}
