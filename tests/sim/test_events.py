"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


def noop():
    pass


def test_pop_orders_by_time():
    queue = EventQueue()
    queue.push(30, noop)
    queue.push(10, noop)
    queue.push(20, noop)
    times = [queue.pop().time for _ in range(3)]
    assert times == [10, 20, 30]


def test_fifo_within_same_time():
    queue = EventQueue()
    first = queue.push(5, noop, label="first")
    second = queue.push(5, noop, label="second")
    assert queue.pop() is first
    assert queue.pop() is second


def test_pop_empty_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    keep = queue.push(1, noop)
    drop = queue.push(2, noop)
    drop.cancel()
    queue.note_cancelled(drop)
    last = queue.push(3, noop)
    assert queue.pop() is keep
    assert queue.pop() is last
    assert queue.pop() is None


def test_len_tracks_live_events():
    queue = EventQueue()
    queue.push(1, noop)
    event = queue.push(2, noop)
    assert len(queue) == 2
    event.cancel()
    queue.note_cancelled(event)
    assert len(queue) == 1


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1, noop)
    queue.push(2, noop)
    head.cancel()
    queue.note_cancelled(head)
    assert queue.peek_time() == 2


def test_note_cancelled_after_peek_discard_does_not_double_decrement():
    """Regression: peek_time lazily discards a cancelled head from the
    heap; a later note_cancelled for the same event must not decrement
    the live count a second time."""
    queue = EventQueue()
    head = queue.push(1, noop)
    keep = queue.push(2, noop)
    head.cancel()  # cancelled directly, without telling the queue yet
    assert queue.peek_time() == 2  # discards `head` from the heap
    assert len(queue) == 1
    queue.note_cancelled(head)  # late accounting: must be a no-op now
    assert len(queue) == 1
    assert queue.pop() is keep
    assert len(queue) == 0


def test_note_cancelled_is_idempotent():
    queue = EventQueue()
    event = queue.push(1, noop)
    queue.push(2, noop)
    event.cancel()
    queue.note_cancelled(event)
    queue.note_cancelled(event)
    assert len(queue) == 1


def test_directly_cancelled_event_accounted_on_pop():
    """An event cancelled without note_cancelled leaves the live count
    when the lazy-deletion discard finally sees it."""
    queue = EventQueue()
    drop = queue.push(1, noop)
    keep = queue.push(2, noop)
    drop.cancel()
    assert len(queue) == 2  # queue not yet told
    assert queue.pop() is keep  # discards `drop` on the way
    assert len(queue) == 0


def test_pop_ready_returns_same_time_batch():
    queue = EventQueue()
    a = queue.push(5, noop, label="a")
    b = queue.push(5, noop, label="b")
    c = queue.push(7, noop, label="c")
    batch = queue.pop_ready()
    assert batch == [a, b]
    # Only the head leaves the live count at pop; `b` stays pending
    # until the engine retires it (fires it or finds it cancelled).
    assert len(queue) == 2
    queue.retire(b)
    assert len(queue) == 1
    assert queue.pop_ready() == [c]
    assert queue.pop_ready() is None


def test_pop_ready_respects_horizon():
    queue = EventQueue()
    queue.push(10, noop)
    assert queue.pop_ready(until=9) is None
    assert len(queue) == 1
    batch = queue.pop_ready(until=10)
    assert [event.time for event in batch] == [10]


def test_pop_ready_skips_cancelled_within_batch():
    queue = EventQueue()
    a = queue.push(5, noop)
    b = queue.push(5, noop)
    c = queue.push(5, noop)
    b.cancel()
    assert queue.pop_ready() == [a, c]
    assert len(queue) == 1  # `c` still pending until retired
    queue.retire(c)
    assert len(queue) == 0


def test_requeue_restores_live_count_and_order():
    queue = EventQueue()
    a = queue.push(5, noop, label="a")
    b = queue.push(5, noop, label="b")
    batch = queue.pop_ready()
    assert batch == [a, b]
    queue.requeue(b)
    assert len(queue) == 1
    assert queue.pop() is b


# ----------------------------------------------------------------------
# Regression tests for the Event.counted / pop_ready audit: members of a
# same-timestamp batch must stay in the live count until they actually
# fire, and cancelling one mid-batch must be accounted exactly once.
# ----------------------------------------------------------------------

def test_unfired_batch_members_stay_in_live_count():
    """Popping a batch must not make its unfired tail vanish from
    len(): those events are still pending from any observer's view."""
    queue = EventQueue()
    queue.push(5, noop)
    b = queue.push(5, noop)
    c = queue.push(5, noop)
    queue.pop_ready()
    assert len(queue) == 2  # b and c: popped, not yet fired
    queue.retire(b)
    queue.retire(c)
    assert len(queue) == 0


def test_cancel_of_popped_batch_member_adjusts_count_once():
    """note_cancelled for a popped-but-unfired batch member must
    decrement the live count exactly once, with the engine's later
    retire() of the same event a guaranteed no-op."""
    queue = EventQueue()
    queue.push(5, noop)
    b = queue.push(5, noop)
    queue.pop_ready()
    assert len(queue) == 1
    b.cancel()
    queue.note_cancelled(b)  # mid-batch cancellation (sim.cancel path)
    assert len(queue) == 0
    queue.retire(b)  # engine reaches the cancelled member
    assert len(queue) == 0
    queue.note_cancelled(b)  # idempotent afterwards too
    assert len(queue) == 0


def test_retire_is_idempotent():
    queue = EventQueue()
    queue.push(3, noop)
    b = queue.push(3, noop)
    queue.pop_ready()
    queue.retire(b)
    queue.retire(b)
    assert len(queue) == 0


def test_requeue_of_unfired_member_keeps_count_exact():
    """Stop-mid-batch: the unfired member never left the live count, so
    requeue must not double-count it."""
    queue = EventQueue()
    queue.push(5, noop)
    b = queue.push(5, noop)
    queue.pop_ready()
    assert len(queue) == 1
    queue.requeue(b)
    assert len(queue) == 1
    assert queue.pop() is b
    assert len(queue) == 0
