"""Schema-rule good fixture: emit shape and subscriber signature agree,
every key is read, every read is provided."""


class Heartbeat:
    def __init__(self, sim):
        self.sim = sim

    def beat(self, count: int) -> None:
        if self.sim.tracing:
            self.sim.emit("heartbeat.tick", count=count, healthy=True)


class HeartbeatMonitor:
    def __init__(self, sim):
        self.count = 0
        self.healthy = True
        sim.on("heartbeat.tick", self._on_tick)

    def _on_tick(self, time, count, healthy=True, **payload):
        self.count = count
        self.healthy = healthy
