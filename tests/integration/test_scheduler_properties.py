"""Property-based tests of the scheduler under random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import SchedClass, Scheduler, ThreadState, make_cores
from repro.sim import Simulator, millis


workload_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),          # thread index
        st.sampled_from(list(SchedClass)[:3]),          # class
        st.integers(min_value=50, max_value=20_000),    # work ref-us
        st.integers(min_value=0, max_value=30_000),     # start offset us
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(n_cores=st.integers(min_value=1, max_value=4), jobs=workload_strategy)
def test_all_work_completes_and_accounting_partitions(n_cores, jobs):
    sim = Simulator(seed=1)
    sched = Scheduler(sim, make_cores([1.0] * n_cores))
    threads = {}
    completed = []
    total_work = 0.0
    for index, sched_class, work, offset in jobs:
        key = (index, sched_class)
        if key not in threads:
            threads[key] = sched.spawn(f"t{index}-{sched_class.name}", sched_class)
        thread = threads[key]
        total_work += work
        sim.schedule(
            offset,
            lambda t=thread, w=work: t.post(w, on_complete=lambda: completed.append(w)),
        )
    sim.run()

    # Every posted job completed.
    assert sum(completed) == total_work
    # State accounting partitions each thread's lifetime exactly.
    for thread in threads.values():
        total = sum(thread.time_in(state) for state in ThreadState)
        assert total == sim.now
        assert thread.state is ThreadState.SLEEPING
    # Work conservation: total busy core time equals total work issued
    # (all cores run at 1 GHz here, so ref-us == wall ticks).
    busy = sum(core.busy_time for core in sched.cores)
    assert abs(busy - total_work) <= len(jobs) + n_cores


@settings(max_examples=40, deadline=None)
@given(jobs=workload_strategy)
def test_io_class_never_waits_behind_lower_classes(jobs):
    """Whenever an IO-class thread is runnable, no lower-class thread
    occupies a core it could claim for longer than an instant."""
    sim = Simulator(seed=2)
    sched = Scheduler(sim, make_cores([1.0]))
    io_thread = sched.spawn("io", SchedClass.IO)
    others = [sched.spawn(f"fg{i}") for i in range(3)]
    for index, _cls, work, offset in jobs:
        thread = others[index % len(others)]
        sim.schedule(offset, lambda t=thread, w=work: t.post(w))
    io_done = []
    sim.schedule(
        millis(5), lambda: io_thread.post(500, on_complete=lambda: io_done.append(sim.now))
    )
    sim.run()
    if io_done:
        # IO thread ran immediately: wake at 5ms + 500us of work.
        assert io_done[0] == millis(5) + 500
    assert io_thread.time_in(ThreadState.RUNNABLE) == 0
    assert io_thread.time_in(ThreadState.RUNNABLE_PREEMPTED) == 0
