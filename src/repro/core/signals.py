"""Memory-pressure signals as an application-facing API.

Re-exports :class:`MemoryPressureLevel` (the OnTrimMemory levels) and
provides :class:`SignalListener`, a small utility that applications —
and the §3 analysis — use to accumulate signal statistics: counts per
level, rates per hour, and the raw log.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from ..kernel.pressure import (  # noqa: F401  (re-exported API)
    MemoryPressureLevel,
    PressureMonitor,
    PressureThresholds,
)
from ..sim.clock import Time, to_seconds


class SignalListener:
    """Accumulates OnTrimMemory signals from a :class:`PressureMonitor`."""

    def __init__(self, monitor: PressureMonitor) -> None:
        self.monitor = monitor
        self.log: List[Tuple[Time, MemoryPressureLevel]] = []
        monitor.subscribe(self._on_signal)

    def _on_signal(self, level: MemoryPressureLevel, time: Time) -> None:
        self.log.append((time, level))

    # ------------------------------------------------------------------
    @property
    def total_signals(self) -> int:
        return len(self.log)

    def counts(self) -> Dict[MemoryPressureLevel, int]:
        """Signals received per level."""
        counter = Counter(level for _, level in self.log)
        return {level: counter.get(level, 0) for level in MemoryPressureLevel}

    def signals_per_hour(self, observed: Time) -> float:
        """Mean signal rate over ``observed`` ticks of monitoring."""
        hours = to_seconds(observed) / 3600.0
        if hours <= 0:
            return 0.0
        return self.total_signals / hours

    def latest_level(self) -> MemoryPressureLevel:
        """The most recently signalled level (NORMAL before any signal)."""
        if not self.log:
            return MemoryPressureLevel.NORMAL
        return self.log[-1][1]
