"""REP111 polices persistence scopes only — kernel/ writes are exempt."""


def scratch_note(path, payload):
    with open(path, "w") as fh:
        fh.write(payload)


def scratch_bytes(path, blob):
    path.write_bytes(blob)
