"""Record-once / analyze-many: trace capture and parallel replay.

The paper's workflow captures one Perfetto trace per session and mines
it repeatedly for Tables 4-5 and Figures 13-14.  This module is that
split for the simulator:

* :func:`record_session_trace` runs one session **with a recorder
  attached** and returns both the session result and the finished
  (detached) trace — recording is observation-only, so the result is
  bit-identical to an untraced :func:`~repro.experiments.parallel.run_spec`
  of the same spec;
* :func:`record_traces` fans recording over the generic job fabric and
  persists each trace into a content-addressed
  :class:`~repro.trace.store.TraceStore`;
* :func:`analyze_view` answers the five §5 queries over any
  :class:`~repro.trace.view.TraceView` — live or replayed — as one
  plain-data :class:`TraceAnalytics`;
* :func:`analyze_store` fans those queries over stored traces with
  ``run_jobs`` (one trace per job, journal-resume supported), **without
  re-simulating anything**.

Replay jobs are embarrassingly parallel and their payloads are plain
paths, so jobs=1 and jobs=N produce byte-identical analytics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import hashlib
import json

from ..sim.clock import Time
from .analysis import (
    PreemptionStats,
    cpu_utilization_series,
    migration_counts,
    preemption_stats,
    state_breakdown,
    state_times,
    top_running_threads,
)
from .recorder import TraceRecorder
from .store import TraceStore, trace_key
from .view import TraceView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.checkpoint import SweepJournal
    from ..experiments.parallel import (
        FabricReport,
        RetryPolicy,
        SessionSpec,
    )
    from ..video.player import SessionResult

#: Client-thread name prefixes counted as "video client threads"
#: (footnote 11: SurfaceFlinger, MediaCodec, and the browser's own).
#: Canonical home; ``experiments.trace_experiments`` re-exports it.
VIDEO_THREAD_PREFIXES = (
    "MediaCodec", "SurfaceFlinger", "firefox", "chrome", "exoplayer"
)

#: Journal family tag for replay-analytics checkpoints — distinct from
#: the session-sweep magic so a foreign journal is discarded, not read.
ANALYTICS_JOURNAL_MAGIC = "repro-trace-analytics"

#: Threads the §5 queries single out by name.
KSWAPD_THREAD = "kswapd0"
LMKD_THREAD = "lmkd"


def is_video_thread(name: str) -> bool:
    return name.startswith(VIDEO_THREAD_PREFIXES)


# ======================================================================
# The five §5 queries as one plain-data result
# ======================================================================

@dataclass
class TraceAnalytics:
    """Every §5 query over one trace, in plain picklable data.

    Keys are state *values* (strings) rather than enum members so the
    object JSON-serialises for digests and CLI output without loss.
    """

    #: Table 4 — seconds per state summed over video client threads.
    video_state_times: Dict[str, float] = field(default_factory=dict)
    #: §5 "top running threads" — (thread, running seconds), descending.
    top_running: List[Tuple[str, float]] = field(default_factory=list)
    #: Figure 13 — kswapd0's fractional state breakdown.
    kswapd_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Table 5 — per-victor preemption stats over video threads.
    preemptions: List[PreemptionStats] = field(default_factory=list)
    #: Figure 14 — lmkd windowed CPU utilization series.
    lmkd_utilization: List[Tuple[float, float]] = field(default_factory=list)
    #: §7 — core migrations per thread.
    migrations: Dict[str, int] = field(default_factory=dict)

    def canonical(self) -> Dict[str, Any]:
        """JSON-safe form with ``repr``-exact floats (digest input)."""
        return {
            "video_state_times": {
                state: repr(value)
                for state, value in sorted(self.video_state_times.items())
            },
            "top_running": [
                [name, repr(value)] for name, value in self.top_running
            ],
            "kswapd_breakdown": {
                state: repr(value)
                for state, value in sorted(self.kswapd_breakdown.items())
            },
            "preemptions": [
                {
                    key: repr(value) if isinstance(value, float) else value
                    for key, value in asdict(stats).items()
                }
                for stats in self.preemptions
            ],
            "lmkd_utilization": [
                [repr(start), repr(value)]
                for start, value in self.lmkd_utilization
            ],
            "migrations": dict(sorted(self.migrations.items())),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical form — bit-identity in one value."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()


def analyze_view(
    view: TraceView, until: Optional[Time] = None
) -> TraceAnalytics:
    """Run all five §5 queries over one trace (live or replayed)."""
    return TraceAnalytics(
        video_state_times={
            state.value: value
            for state, value in state_times(
                view, is_video_thread, until
            ).items()
        },
        top_running=top_running_threads(view, until, limit=10),
        kswapd_breakdown={
            state.value: value
            for state, value in state_breakdown(
                view, KSWAPD_THREAD, until
            ).items()
        },
        preemptions=preemption_stats(view, is_video_thread, until),
        lmkd_utilization=cpu_utilization_series(view, LMKD_THREAD, until=until),
        migrations=migration_counts(view),
    )


# ======================================================================
# Recording: one traced session, observation-only
# ======================================================================

def record_session_trace(
    spec: "SessionSpec",
) -> Tuple["SessionResult", TraceRecorder]:
    """Run one session job with a trace recorder attached throughout.

    The session is constructed exactly as
    :func:`~repro.experiments.parallel.run_spec` constructs it — same
    factory, same seed path — and the recorder only observes the emit
    bus, so the returned :class:`SessionResult` is bit-identical to an
    untraced run of the same spec (golden-locked).  The recorder covers
    the whole run (pressure ramp included) and comes back detached,
    ready for :meth:`~repro.trace.store.TraceStore.save`.
    """
    from ..core.session import DEVICE_FACTORIES, StreamingSession

    device = DEVICE_FACTORIES[spec.device](seed=spec.seed)
    recorder = TraceRecorder(device.sim)
    session = StreamingSession(
        device=device,
        asset=spec.asset,
        resolution=spec.resolution,
        frame_rate=spec.fps,
        pressure=spec.pressure,
        client=spec.client,
        duration_s=spec.duration_s,
        seed=spec.seed,
        organic_apps=spec.organic_apps,
        abr=spec.abr() if callable(spec.abr) else spec.abr,
    )
    result = session.run()
    recorder.detach()
    return result, recorder


def spec_trace_key(spec: "SessionSpec") -> str:
    """Content address of a spec's trace (spec digest + trace schema)."""
    from ..experiments.parallel import cache_key

    return trace_key(cache_key(spec))


@dataclass(frozen=True)
class TraceRecordJob:
    """One record-and-persist job: a spec plus the store to write into.

    Plain data (no callables, no open handles) so the generic fabric
    can ship it to a worker process.
    """

    spec: "SessionSpec"
    store_root: str


def record_trace_job(job: TraceRecordJob) -> "SessionResult":
    """Record one session's trace into the store (worker entry point)."""
    from ..experiments.parallel import cache_key

    spec = job.spec
    result, recorder = record_session_trace(spec)
    session_key = cache_key(spec)
    TraceStore(job.store_root).save(
        trace_key(session_key),
        recorder,
        meta={
            "session": session_key,
            "device": spec.device,
            "resolution": spec.resolution,
            "fps": spec.fps,
            "pressure": spec.pressure,
            "client": spec.client or "",
            "duration_s": spec.duration_s,
            "seed": spec.seed,
            "organic_apps": spec.organic_apps,
        },
    )
    return result


def record_traces(
    specs: Sequence["SessionSpec"],
    store: TraceStore,
    jobs: Optional[int] = None,
    journal: Optional["SweepJournal"] = None,
    policy: Optional["RetryPolicy"] = None,
    report: Optional["FabricReport"] = None,
    cache: Any = None,
) -> List[Optional["SessionResult"]]:
    """Record traces for ``specs`` into ``store`` on the job fabric.

    Specs whose trace already exists in the store are skipped (their
    slot holds ``None`` unless the session ``cache`` still has the
    result); the rest fan out over ``jobs`` workers with the full
    supervision stack — retries, journal-resume, Ctrl-C drain.  Each
    completed job also lands its :class:`SessionResult` in the cache,
    so recording warms the ordinary result cache.  ``cache`` follows
    the :func:`repro.experiments.parallel.run_sessions` contract:
    ``None`` selects the default on-disk cache, ``False`` disables
    caching, a :class:`ResultCache` passes through.
    """
    from ..experiments.parallel import cache_key, resolve_cache, run_jobs

    cache = resolve_cache(cache)
    session_keys = [cache_key(spec) for spec in specs]
    results: List[Optional["SessionResult"]] = [None] * len(specs)
    todo: List[int] = []
    for index, session_key in enumerate(session_keys):
        if store.contains(trace_key(session_key)):
            if report is not None:
                report.cache_hits += 1
            if cache is not None:
                results[index] = cache.get(session_key)
            continue
        todo.append(index)
    if todo:
        computed = run_jobs(
            [TraceRecordJob(specs[i], str(store.root)) for i in todo],
            record_trace_job,
            keys=[trace_key(session_keys[i]) for i in todo],
            seeds=[specs[i].seed for i in todo],
            jobs=jobs,
            journal=journal,
            policy=policy,
            report=report,
        )
        for index, result in zip(todo, computed):
            results[index] = result
            if cache is not None and result is not None:
                cache.put(session_keys[index], result)
    return results


# ======================================================================
# Replay: parallel analytics over stored traces, no re-simulation
# ======================================================================

def analyze_trace_path(path: str) -> TraceAnalytics:
    """Load one stored trace and run the §5 queries (worker entry point)."""
    from .store import load_trace

    return analyze_view(load_trace(path))


def analyze_store(
    store: TraceStore,
    keys: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    journal: Optional["SweepJournal"] = None,
    policy: Optional["RetryPolicy"] = None,
    report: Optional["FabricReport"] = None,
) -> Dict[str, TraceAnalytics]:
    """Replay-analyze stored traces in parallel; returns key → analytics.

    One job per trace on the generic fabric (``keys`` defaults to every
    trace in the store, sorted).  A job's payload is just the trace
    path, its journal key is ``analytics:<trace key>``, and the queries
    are pure functions of the file's contents — so resumed, serial, and
    parallel runs are byte-identical.
    """
    from ..experiments.parallel import run_jobs

    trace_keys = list(keys) if keys is not None else store.keys()
    analytics = run_jobs(
        [str(store.path_for(key)) for key in trace_keys],
        analyze_trace_path,
        keys=[f"analytics:{key}" for key in trace_keys],
        jobs=jobs,
        journal=journal,
        policy=policy,
        report=report,
    )
    return {
        key: result
        for key, result in zip(trace_keys, analytics)
        if result is not None
    }
