"""REP130 good fixture: plain-data payload; handles rebuilt worker-side."""

from dataclasses import dataclass

from repro.experiments.parallel import run_jobs


@dataclass
class CleanJob:
    frame: int
    device: str
    scratch_root: str


def _render(job: CleanJob) -> int:
    return job.frame


def submit_all(frames):
    jobs = [
        CleanJob(frame=i, device="nokia1", scratch_root="/tmp/render")
        for i in frames
    ]
    return run_jobs(jobs, _render)
