"""The leaderboard artifact: schema-versioned, content-addressed,
byte-reproducible.

The artifact is a single JSON document built from the run's records in
canonical enumeration order, serialized canonically (sorted keys, no
whitespace), and stamped with the SHA-256 of its own payload — so two
runs of the same configuration produce byte-identical files regardless
of worker count, cache state, or interrupt/resume history, and any
mutation of a published leaderboard is detectable from the digest
alone.  ``repro arena`` writes the JSON next to a rendered fixed-width
table for humans.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..storage import StorageReport, publish_bytes, write_sidecar
from .driver import ARENA_SCHEMA_VERSION, ArenaConfig, ArenaRecord
from .policies import get_policy
from .scoring import OBJECTIVES

#: Ranking objective: standings order by this scorer's mean, then the
#: others in OBJECTIVES order as tie-breakers, then the policy name.
PRIMARY_OBJECTIVE = "additive"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def build_leaderboard(
    config: ArenaConfig, records: Sequence[ArenaRecord]
) -> Dict[str, object]:
    """Aggregate records into the leaderboard document.

    Records must be the complete grid in canonical enumeration order
    (``arena_jobs`` order); every aggregate below is computed from them
    with order-independent arithmetic, so the document depends only on
    the record *set*.
    """
    objectives = list(OBJECTIVES)
    by_policy: Dict[str, List[ArenaRecord]] = {}
    by_cell: Dict[Tuple[str, str, str], List[ArenaRecord]] = {}
    for record in records:
        by_policy.setdefault(record.policy, []).append(record)
        cell = (record.policy, record.device, record.pressure)
        by_cell.setdefault(cell, []).append(record)

    def aggregate(group: Sequence[ArenaRecord]) -> Dict[str, object]:
        out: Dict[str, object] = {
            "sessions": len(group),
            "crash_rate": _mean([1.0 if r.crashed else 0.0 for r in group]),
            "mean_drop_rate": _mean([r.drop_rate for r in group]),
            "mean_rendered_fps": _mean(
                [r.mean_rendered_fps for r in group]
            ),
            "mean_rebuffer_s": _mean(
                [r.metrics.rebuffer_s for r in group]
            ),
        }
        for name in objectives:
            out[name] = _mean([r.score(name) for r in group])
        return out

    standings = []
    for policy, group in by_policy.items():
        row = {"policy": policy, "family": get_policy(policy).family}
        row.update(aggregate(group))
        standings.append(row)
    standings.sort(key=lambda row: (
        *[-float(row[name]) for name in
          [PRIMARY_OBJECTIVE] + [n for n in objectives
                                 if n != PRIMARY_OBJECTIVE]],
        row["policy"],
    ))
    for rank, row in enumerate(standings, start=1):
        row["rank"] = rank

    cells = []
    for (policy, device, pressure), group in by_cell.items():
        row = {"policy": policy, "device": device, "pressure": pressure}
        row.update(aggregate(group))
        cells.append(row)

    rows = [
        {
            "policy": r.policy,
            "device": r.device,
            "pressure": r.pressure,
            "rep": r.rep,
            "seed": r.seed,
            "key": r.key,
            "drop_rate": r.drop_rate,
            "mean_rendered_fps": r.mean_rendered_fps,
            "crashed": r.crashed,
            "startup_s": r.metrics.startup_s,
            "rebuffer_s": r.metrics.rebuffer_s,
            "freeze_s": r.metrics.freeze_s,
            "switch_count": r.metrics.switch_count,
            "scores": {s.objective: s.value for s in r.scores},
        }
        for r in records
    ]

    payload: Dict[str, object] = {
        "kind": "arena-leaderboard",
        "schema": ARENA_SCHEMA_VERSION,
        "objectives": objectives,
        "config": config.as_dict(),
        "standings": standings,
        "cells": cells,
        "records": rows,
    }
    payload["digest"] = _payload_digest(payload)
    return payload


def _payload_digest(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical payload, ``digest`` field excluded."""
    material = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def artifact_bytes(leaderboard: Dict[str, object]) -> bytes:
    """The artifact's canonical on-disk bytes (digest verified)."""
    digest = leaderboard.get("digest")
    if digest != _payload_digest(leaderboard):
        raise ValueError("leaderboard digest does not match its payload")
    canonical = json.dumps(
        leaderboard, sort_keys=True, separators=(",", ":")
    )
    return canonical.encode() + b"\n"


def render_table(leaderboard: Dict[str, object]) -> str:
    """The human-facing standings table (stable, fixed-width)."""
    config = leaderboard["config"]
    objectives = leaderboard["objectives"]
    lines = [
        "arena: {} policies x {} devices x {} pressures x {} rep(s), "
        "{}@{}fps, {:g}s".format(
            len(config["policies"]), len(config["devices"]),
            len(config["pressures"]), config["reps"],
            config["resolution"], config["fps"], config["duration_s"],
        ),
    ]
    header = (
        f"{'rank':>4}  {'policy':<10} {'family':<16}"
        + "".join(f" {name:>14}" for name in objectives)
        + f" {'crash%':>7} {'drop%':>7} {'fps':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in leaderboard["standings"]:
        lines.append(
            f"{row['rank']:>4}  {row['policy']:<10} {row['family']:<16}"
            + "".join(f" {row[name]:>14.3f}" for name in objectives)
            + f" {100 * row['crash_rate']:>7.1f}"
            + f" {100 * row['mean_drop_rate']:>7.1f}"
            + f" {row['mean_rendered_fps']:>6.1f}"
        )
    lines.append(f"digest: {leaderboard['digest']}")
    return "\n".join(lines) + "\n"


def write_artifact(
    leaderboard: Dict[str, object],
    out_dir: Path | str,
    *,
    report: Optional[StorageReport] = None,
) -> Tuple[Path, Path]:
    """Write ``leaderboard-<digest16>.json`` and its rendered ``.txt``
    into ``out_dir``; returns the two paths.  Content-addressed names
    mean re-running the same configuration overwrites the same files
    with the same bytes, and different configurations never collide.

    Both files go through the atomic publish discipline: a crash
    mid-write can no longer leave a half-written artifact whose
    filename claims a digest it doesn't hash to.  The JSON carries a
    checksum envelope sidecar on top of its embedded self-digest, so
    ``repro fsck`` can verify a published leaderboard without knowing
    the arena payload format.
    """
    out = Path(out_dir)
    stem = f"leaderboard-{str(leaderboard['digest'])[:16]}"
    json_path = out / f"{stem}.json"
    txt_path = out / f"{stem}.txt"
    data = artifact_bytes(leaderboard)
    digest = publish_bytes(
        json_path, data, surface="leaderboard", report=report
    )
    write_sidecar(
        json_path,
        kind="arena-leaderboard",
        schema=f"v{ARENA_SCHEMA_VERSION}",
        digest=digest,
        size=len(data),
    )
    publish_bytes(
        txt_path,
        render_table(leaderboard).encode("utf-8"),
        surface="leaderboard",
        report=report,
    )
    return json_path, txt_path
