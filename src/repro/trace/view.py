"""The trace read interface shared by live recording and replay.

:mod:`repro.trace.analysis` answers every §5 question from four event
families (state transitions, preemptions/rotations, migrations, counter
tracks) plus the trace's time span.  :class:`TraceView` is that contract
made concrete: the live :class:`~repro.trace.recorder.TraceRecorder`
fills it while the simulation runs, and
:class:`~repro.trace.store.ReplayTrace` fills it from a columnar file on
disk — so an analysis query cannot tell (and must not care) whether the
events it walks were recorded five microseconds or five weeks ago.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sched.states import ThreadState
from ..sim.clock import Time

#: A state transition: (time, new_state).
Transition = Tuple[Time, ThreadState]
#: A displacement: (time, victim name, victor name, core index).
Preemption = Tuple[Time, str, str, int]


class TraceView:
    """Recorded scheduling events and counter tracks, queryable.

    Subclasses populate the data attributes and define the trace's
    :attr:`end_time`; the interval-reconstruction queries live here so
    live and replayed traces share one implementation (and therefore
    produce bit-identical analysis results on identical event data).
    """

    #: First instant covered by the trace.
    start_time: Time
    #: Per-thread state transitions, in occurrence order.
    transitions: Dict[str, List[Transition]]
    #: True mid-slice preemptions by a higher scheduling class.
    preemptions: List[Preemption]
    #: Involuntary quantum rotations within the same class.
    rotations: List[Preemption]
    #: Core migrations per thread.
    migrations: Dict[str, int]
    #: Named counter tracks: (sample time, value) per sample.
    counters: Dict[str, List[Tuple[Time, float]]]
    #: The state each thread was in when first observed.
    initial_states: Dict[str, ThreadState]

    @property
    def end_time(self) -> Time:
        """Last instant covered by the trace (analysis' default horizon)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Interval reconstruction
    # ------------------------------------------------------------------
    def intervals(
        self, thread_name: str, until: Optional[Time] = None
    ) -> List[Tuple[Time, Time, ThreadState]]:
        """(start, end, state) intervals for one thread, tiling
        [start_time, until]."""
        if until is None:
            until = self.end_time
        events = self.transitions.get(thread_name, [])
        initial = self.initial_states.get(thread_name, ThreadState.SLEEPING)
        result: List[Tuple[Time, Time, ThreadState]] = []
        current_state = initial
        current_start = self.start_time
        for time, new_state in events:
            if time > until:
                break
            if time > current_start:
                result.append((current_start, time, current_state))
            current_state = new_state
            current_start = time
        if until > current_start:
            result.append((current_start, until, current_state))
        return result

    def thread_names(self) -> List[str]:
        return sorted(self.transitions.keys())
