"""Unit tests for network link models."""

import pytest

from repro.sim.clock import micros, seconds
from repro.video.network import Link, TraceLink, lan_link


def test_fixed_link_transfer_time():
    link = Link(bandwidth_mbps=8.0, rtt_ms=10.0)
    # 1 MB at 8 Mbps = 1 second, plus RTT.
    assert link.transfer_time(1_000_000) == seconds(1.0) + micros(10_000)


def test_zero_bytes_costs_only_rtt():
    link = Link(bandwidth_mbps=100.0, rtt_ms=4.0)
    assert link.transfer_time(0) == micros(4_000)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Link(10.0).transfer_time(-1)


def test_lan_link_is_fast():
    link = lan_link()
    # A 4-second 1080p60 segment (~6 MB) downloads in well under a second.
    assert link.transfer_time(6_000_000) < seconds(0.5)


def test_trace_link_piecewise_throughput():
    trace = TraceLink([(0.0, 10.0), (1.0, 2.0)], rtt_ms=0.0)
    assert trace.throughput_at(seconds(0.5)) == 10.0
    assert trace.throughput_at(seconds(1.5)) == 2.0


def test_trace_link_integrates_across_boundary():
    trace = TraceLink([(0.0, 8.0), (1.0, 4.0)], rtt_ms=0.0)
    # 1.5 MB: 1 MB in the first second at 8 Mbps, 0.5 MB at 4 Mbps = 1 s.
    t = trace.transfer_time(1_500_000, start=0)
    assert t == pytest.approx(seconds(2.0), rel=1e-6)


def test_trace_link_validation():
    with pytest.raises(ValueError):
        TraceLink([])
    with pytest.raises(ValueError):
        TraceLink([(1.0, 5.0)])  # must start at 0
    with pytest.raises(ValueError):
        TraceLink([(0.0, 5.0), (0.0, 3.0)])  # non-increasing
    with pytest.raises(ValueError):
        TraceLink([(0.0, 0.0)])  # zero bandwidth


def test_trace_link_start_offset_changes_rate():
    trace = TraceLink([(0.0, 100.0), (10.0, 1.0)], rtt_ms=0.0)
    fast = trace.transfer_time(1_000_000, start=0)
    slow = trace.transfer_time(1_000_000, start=seconds(10))
    assert slow > fast * 50
