"""Quantum elision: fast-forwarded slice chains must be transparent.

A multi-quantum work item whose core has no possible rotator or
preemptor queued skips its interior ``slice_end`` events and schedules
the completion directly.  These tests pin the re-arm contract: the
moment a second runnable appears — same class (rotation) or higher
class (preemption) — the elided chain is re-chopped into real quanta
at exactly the boundary the explicit chain would be on.
"""

import pytest

from repro.sched import SchedClass, Scheduler, ThreadState, make_cores
from repro.sched.scheduler import Scheduler as SchedulerClass
from repro.sim import Simulator, millis


def make_sched(n_cores=1, freq=1.0, quantum=millis(4)):
    sim = Simulator()
    sched = Scheduler(sim, make_cores([freq] * n_cores), quantum=quantum)
    return sim, sched


def test_multi_quantum_work_is_elided():
    sim, sched = make_sched()
    thread = sched.spawn("worker")
    thread.post(millis(10))  # 2.5 quanta
    sim.schedule(0, lambda: None)
    sim.run(until=millis(1))
    core = sched.cores[0]
    assert core.elide_event is not None
    assert core.slice_end_event is None
    assert sched._elided_count == 1
    sim.run()
    assert sched._elided_count == 0
    assert sched.elided_slices == 2  # boundaries at 4ms and 8ms
    assert thread.state is ThreadState.SLEEPING


def test_single_quantum_work_is_not_elided():
    sim, sched = make_sched()
    thread = sched.spawn("worker")
    thread.post(millis(2))
    sim.run(until=millis(1))
    core = sched.cores[0]
    assert core.elide_event is None
    assert core.slice_end_event is not None


def test_same_class_waiter_mid_elided_slice_rearms_real_quanta():
    """A rotation candidate posted mid-elided-slice re-chops the chain;
    the rotation then happens at the next 4ms boundary, exactly as the
    explicit chain would rotate."""
    sim, sched = make_sched()
    a = sched.spawn("a", SchedClass.FOREGROUND)
    b = sched.spawn("b", SchedClass.FOREGROUND)
    a.post(millis(20))
    done = []
    state_after_post = {}

    def post_b():
        b.post(millis(2), on_complete=lambda: done.append(sim.now))
        core = sched.cores[0]
        state_after_post["elide"] = core.elide_event
        state_after_post["slice_end"] = core.slice_end_event
        state_after_post["elided_count"] = sched._elided_count

    sim.schedule(millis(6), post_b)
    sim.run()
    # The mid-slice arrival materialized the chain into real quanta.
    assert state_after_post["elide"] is None
    assert state_after_post["slice_end"] is not None
    assert state_after_post["elided_count"] == 0
    # Rotation at the 8ms boundary, so b finishes its 2ms at 10ms.
    assert done == [millis(10)]
    assert a.preemptions_suffered == 1


def test_higher_class_preemptor_mid_elided_slice_preempts_immediately():
    """An IO-class wakeup lands mid-elided-slice: the chain re-arms and
    the preemption happens at the arrival instant, not at the (elided)
    completion."""
    sim, sched = make_sched()
    a = sched.spawn("a", SchedClass.FOREGROUND)
    io = sched.spawn("io", SchedClass.IO)
    a.post(millis(20))
    done = []
    sim.schedule(
        millis(6),
        lambda: io.post(millis(1), on_complete=lambda: done.append(sim.now)),
    )
    sim.run()
    assert done == [millis(7)]  # ran 6..7ms, preempting a on arrival
    assert a.preemptions_suffered == 1
    assert sched._elided_count == 0
    assert a.time_in(ThreadState.RUNNABLE_PREEMPTED) == millis(1)


def _mixed_workload_snapshot():
    """Run a mixed multi-class workload; return its full accounting."""
    sim, sched = make_sched(n_cores=2)
    fg_a = sched.spawn("fg_a", SchedClass.FOREGROUND)
    fg_b = sched.spawn("fg_b", SchedClass.FOREGROUND)
    bg = sched.spawn("bg", SchedClass.BACKGROUND)
    io = sched.spawn("io", SchedClass.IO)
    completions = []
    fg_a.post(millis(18), on_complete=lambda: completions.append(("a", sim.now)))
    bg.post(millis(30), on_complete=lambda: completions.append(("bg", sim.now)))
    sim.schedule(millis(5), lambda: fg_b.post(
        millis(6), on_complete=lambda: completions.append(("b", sim.now))))
    sim.schedule(millis(9), lambda: io.post(
        millis(2), on_complete=lambda: completions.append(("io", sim.now))))
    sim.run()
    snapshot = {
        "completions": completions,
        "busy": [core.busy_time for core in sched.cores],
        "switches": sched.context_switches,
        "preemptions": sched.preemption_count,
        "states": {
            t.name: dict(t.accounting.totals) for t in sched.threads
        },
        "end": sim.now,
    }
    return snapshot, sched.elided_slices


def test_elision_is_bit_identical_to_explicit_chains(monkeypatch):
    """The same mixed workload, with elision on and off, must produce
    identical accounting — elision only removes bookkeeping events."""
    elided_snapshot, elided_count = _mixed_workload_snapshot()
    assert elided_count > 0
    with monkeypatch.context() as patch:
        patch.setattr(
            SchedulerClass, "_elidable", lambda self, sched_class: False
        )
        explicit_snapshot, explicit_count = _mixed_workload_snapshot()
    assert explicit_count == 0
    assert elided_snapshot == explicit_snapshot
