"""Tests for the parallel experiment fabric and the result cache.

The fabric's contract is *bit-identical results* across the serial
path, the process-pool path, and the cache-hit path; these tests pin
that contract plus the cache's failure modes (corruption, schema
drift) and the CLI's ``--no-cache`` escape hatch.
"""

from __future__ import annotations

import pickle

import pytest

from repro import cli
from repro.experiments import parallel
from repro.experiments.parallel import (
    ResultCache,
    SessionSpec,
    cache_key,
    effective_jobs,
    repetition_seeds,
    run_sessions,
)
from repro.experiments.runner import run_cell, run_cells
from repro.video.player import SessionResult

#: A deliberately tiny cell: enough simulated time to exercise the
#: full pipeline, small enough to run many times per test session.
CELL = dict(
    device="nexus5", resolution="240p", fps=30,
    pressure="normal", duration_s=4.0, repetitions=2,
)


def _cell(jobs=None, cache=False, **overrides):
    return run_cell(**{**CELL, **overrides}, jobs=jobs, cache=cache)


# ----------------------------------------------------------------------
# Determinism: serial == parallel == cached
# ----------------------------------------------------------------------

def test_serial_parallel_and_cache_results_identical(tmp_path):
    """The ISSUE's core guarantee, as a regression test: the same seed
    yields an identical SessionResult (frame counts, crashes, PSS
    series, signals — every field) whether the session ran serially,
    across 4 worker processes, or out of a cache hit."""
    serial = _cell()
    parallel_run = _cell(jobs=4)

    store = ResultCache(tmp_path / "cache")
    populate = _cell(cache=store)  # cold: computes and fills the cache
    cached = _cell(cache=store)    # warm: served purely from disk
    assert store.hits == CELL["repetitions"]  # every warm rep from disk

    for other in (parallel_run, populate, cached):
        assert serial.results == other.results  # full dataclass equality
    assert serial.results[0] != serial.results[1]  # reps differ (seeds)


def test_seed_schedule_is_deterministic():
    assert repetition_seeds(100, 3) == [100, 8019, 15938]
    a = _cell()
    b = _cell()
    assert a.results == b.results


def test_grid_parallel_matches_serial():
    cells = [
        {**CELL, "resolution": "240p"},
        {**CELL, "resolution": "360p"},
    ]
    serial = run_cells(cells, cache=False)
    fanned = run_cells(cells, jobs=3, cache=False)
    assert [c.results for c in serial] == [c.results for c in fanned]
    assert [c.resolution for c in serial] == ["240p", "360p"]


def test_three_cell_grid_digest_identical_across_paths(tmp_path):
    """Byte-level determinism over a whole grid: a 3-cell sweep pickles
    identically whether it ran serially, over 4 worker processes, or as
    a pure cache replay."""
    cells = [
        {**CELL, "resolution": resolution}
        for resolution in ("240p", "360p", "480p")
    ]
    serial = run_cells(cells, jobs=1, cache=False)
    fanned = run_cells(cells, jobs=4, cache=False)
    store = ResultCache(tmp_path / "cache")
    run_cells(cells, cache=store)            # cold: fills the cache
    replayed = run_cells(cells, cache=store)  # warm: pure replay
    assert store.hits == len(cells) * CELL["repetitions"]

    # Per-result pickles (a shared container would add memo references
    # that depend on which path produced the objects, not their values).
    def digests(grid):
        return [pickle.dumps(r) for cell in grid for r in cell.results]

    digest = digests(serial)
    assert digests(fanned) == digest
    assert digests(replayed) == digest


def test_shared_abr_instance_runs_in_process(tmp_path):
    """A shared (non-callable) ABR instance must neither be cached nor
    shipped to a worker copy."""

    class Controller:  # a shared instance, not a factory
        def choose_representation(self, player):
            return None

        def on_pressure_signal(self, player, level):
            return None

    instance = Controller()
    spec = SessionSpec(
        device="nexus5", resolution="240p", fps=30, pressure="normal",
        client=None, duration_s=4.0, seed=1, abr=instance,
    )
    assert not spec.cacheable
    assert not spec.parallel_safe
    store = ResultCache(tmp_path / "cache")
    results = run_sessions([spec], jobs=4, cache=store)
    assert isinstance(results[0], SessionResult)
    assert store.hits == 0 and store.misses == 0  # never consulted


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------

def _spec(seed=7, **overrides):
    base = dict(
        device="nexus5", resolution="240p", fps=30, pressure="normal",
        client=None, duration_s=4.0, seed=seed,
    )
    base.update(overrides)
    return SessionSpec(**base)


def test_cache_miss_then_hit(tmp_path):
    store = ResultCache(tmp_path)
    [result] = run_sessions([_spec()], cache=store)
    assert (store.hits, store.misses) == (0, 1)
    [again] = run_sessions([_spec()], cache=store)
    assert (store.hits, store.misses) == (1, 1)
    assert result == again


def test_cache_key_separates_configs():
    base = _spec()
    assert cache_key(base) == cache_key(_spec())
    for other in (
        _spec(seed=8),
        _spec(fps=60),
        _spec(resolution="360p"),
        _spec(pressure="moderate"),
        _spec(client="chrome"),
        _spec(duration_s=5.0),
        _spec(organic_apps=2),
    ):
        assert cache_key(other) != cache_key(base)


def test_schema_version_bump_invalidates(tmp_path, monkeypatch):
    store = ResultCache(tmp_path)
    run_sessions([_spec()], cache=store)
    monkeypatch.setattr(parallel, "SCHEMA_VERSION", parallel.SCHEMA_VERSION + 1)
    run_sessions([_spec()], cache=store)
    assert store.hits == 0  # old entry no longer addressable
    assert store.misses == 2


def test_corrupt_entry_is_recomputed_and_replaced(tmp_path):
    store = ResultCache(tmp_path)
    [clean] = run_sessions([_spec()], cache=store)
    path = store.path_for(cache_key(_spec()))
    path.write_bytes(b"not a pickle")
    with pytest.warns(RuntimeWarning, match="quarantined"):
        [recovered] = run_sessions([_spec()], cache=store)
    assert recovered == clean
    assert store.quarantined == 1
    # ... and the rewritten entry is valid again:
    with path.open("rb") as fh:
        assert pickle.load(fh) == clean


def test_truncated_entry_is_recomputed_and_replaced(tmp_path):
    """A partial write (crash mid-put, full disk) must read as a miss,
    not an exception — and the entry must come back valid."""
    store = ResultCache(tmp_path)
    [clean] = run_sessions([_spec()], cache=store)
    path = store.path_for(cache_key(_spec()))
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.warns(RuntimeWarning, match="quarantined"):
        [recovered] = run_sessions([_spec()], cache=store)
    assert recovered == clean
    with path.open("rb") as fh:
        assert pickle.load(fh) == clean


def test_wrong_payload_type_is_a_miss(tmp_path):
    store = ResultCache(tmp_path)
    key = cache_key(_spec())
    store.path_for(key).parent.mkdir(parents=True)
    store.path_for(key).write_bytes(pickle.dumps({"not": "a result"}))
    with pytest.warns(RuntimeWarning, match="quarantined"):
        assert store.get(key) is None


def test_resolve_cache_modes(tmp_path, monkeypatch):
    assert parallel.resolve_cache(False) is None
    store = ResultCache(tmp_path)
    assert parallel.resolve_cache(store) is store
    monkeypatch.setenv(parallel.CACHE_DISABLE_ENV, "1")
    assert parallel.resolve_cache(None) is None
    monkeypatch.delenv(parallel.CACHE_DISABLE_ENV)
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(tmp_path / "custom"))
    resolved = parallel.resolve_cache(None)
    assert resolved is not None
    assert resolved.root == tmp_path / "custom"


def test_effective_jobs_clamping():
    assert effective_jobs(None, 10) == 1
    assert effective_jobs(1, 10) == 1
    assert effective_jobs(4, 2) == 2
    assert effective_jobs(0, 99) >= 1  # all cores


# ----------------------------------------------------------------------
# CLI escape hatch
# ----------------------------------------------------------------------

@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cli-cache"
    monkeypatch.setenv(parallel.CACHE_DIR_ENV, str(cache_dir))
    monkeypatch.delenv(parallel.CACHE_DISABLE_ENV, raising=False)
    return cache_dir


RUN_ARGS = ["run", "--device", "nexus5", "--resolution", "240p",
            "--fps", "30", "--duration", "4", "--json"]


def test_cli_populates_cache_by_default(cache_env, capsys):
    assert cli.main(RUN_ARGS) == 0
    capsys.readouterr()
    assert list(cache_env.rglob("*.pkl"))


def test_cli_no_cache_leaves_no_trace(cache_env, capsys):
    assert cli.main(RUN_ARGS + ["--no-cache"]) == 0
    out = capsys.readouterr().out
    assert '"drop_rate"' in out
    assert not cache_env.exists() or not list(cache_env.rglob("*.pkl"))


# ----------------------------------------------------------------------
# Generic job fabric (run_jobs / resolve_jobs)
# ----------------------------------------------------------------------

def _square(payload):
    return payload * payload


def test_run_jobs_serial_returns_in_order():
    results = parallel.run_jobs([1, 2, 3, 4], _square)
    assert results == [1, 4, 9, 16]


def test_run_jobs_pool_matches_serial():
    payloads = list(range(8))
    serial = parallel.run_jobs(payloads, _square)
    pooled = parallel.run_jobs(payloads, _square, jobs=2)
    assert pooled == serial


def test_run_jobs_journals_and_resumes(tmp_path):
    from repro.experiments.checkpoint import SweepJournal

    payloads = [3, 5, 7]
    keys = [f"job{p}" for p in payloads]
    path = tmp_path / "jobs.journal"
    report = parallel.FabricReport()
    first = parallel.run_jobs(
        payloads, _square, keys=keys,
        journal=SweepJournal(path, result_type=int), report=report,
    )
    assert first == [9, 25, 49]
    assert report.computed == 3
    resumed = parallel.FabricReport()
    second = parallel.run_jobs(
        payloads, _square, keys=keys,
        journal=SweepJournal(path, result_type=int), report=resumed,
    )
    assert second == first
    assert resumed.computed == 0
    assert resumed.resumed == 3


def test_run_jobs_length_mismatch_rejected():
    with pytest.raises(ValueError):
        parallel.run_jobs([1, 2], _square, keys=["only-one"])


def test_resolve_jobs_clamps_to_cores():
    cores = parallel._available_cores()
    assert parallel.resolve_jobs(None) is None
    assert parallel.resolve_jobs(0) == cores
    assert parallel.resolve_jobs(-1) == cores
    assert parallel.resolve_jobs(1) == 1
    assert parallel.resolve_jobs(cores + 7) == cores
