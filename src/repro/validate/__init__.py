"""Simulation validation: invariant checkers, oracles, golden traces.

See :mod:`repro.validate.checkers` for the runtime invariant layer,
:mod:`repro.validate.oracles` for the metamorphic properties, and
:mod:`repro.validate.golden` for the golden-trace regression digests.
``repro validate`` (CLI) drives all three via
:func:`repro.validate.runner.run_validation`.
"""

from .checkers import (
    Checker,
    InvariantViolation,
    PageConservationChecker,
    PressureOrderingChecker,
    SchedulerSanityChecker,
    ValidationHarness,
    VideoPipelineChecker,
    Violation,
    inject_accounting_fault,
)
from .golden import CANONICAL_SESSIONS, check_golden, session_digest
from .oracles import OracleOutcome, run_oracles
from .runner import ValidationReport, run_validation

__all__ = [
    "CANONICAL_SESSIONS",
    "Checker",
    "InvariantViolation",
    "OracleOutcome",
    "PageConservationChecker",
    "PressureOrderingChecker",
    "SchedulerSanityChecker",
    "ValidationHarness",
    "ValidationReport",
    "VideoPipelineChecker",
    "Violation",
    "check_golden",
    "inject_accounting_fault",
    "run_oracles",
    "run_validation",
    "session_digest",
]
