"""Interprocedural determinism-taint rules (REP120-series).

REP101/REP102/REP104 flag a wall-clock read, an unseeded draw, or a set
iteration *where it happens*.  These rules flag where such a value
*lands*: a tainted value flowing — through any call depth — into a
seed, a content-address/cache key, a sweep-journal record, or an
``emit()`` payload.  That is the project's actual invariant: the repro
promises bit-identical replays across serial/parallel/cache/resume, and
every one of those channels is keyed or replayed from exactly these
sinks.

The heavy lifting happens in :mod:`repro.analysis.dataflow`; each rule
here selects one taint source kind from the shared whole-program
analysis (which runs once per lint, lazily, via the project index) and
renders findings.  Witness chains are part of the message, so a finding
reads like::

    value derived from wall-clock time flows into derive_seed()
    argument 1 (via _mix() -> _entropy())

The analyzer's own package is excluded: the linter hashes file contents
and findings by design, and those digests never feed simulation state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Iterable, List

from ..dataflow import KIND_ENV, KIND_RNG, KIND_SETORDER, KIND_WALLCLOCK
from ..engine import Finding, ProjectRule, scope_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..project import ProjectIndex

#: Scopes whose files are never flagged by the taint rules.
EXCLUDED_SCOPES: FrozenSet[str] = frozenset({"analysis"})


class _TaintRuleBase(ProjectRule):
    """One rule per taint source kind, sharing the global analysis."""

    source_kind: str = ""

    def check_project(self, index: "ProjectIndex") -> Iterable[Finding]:
        findings: List[Finding] = []
        for taint in index.taint.findings():
            if taint.source != self.source_kind:
                continue
            path = index.path_of_module(taint.module)
            if path is None:
                continue
            if scope_key(path) in EXCLUDED_SCOPES:
                continue
            findings.append(Finding(
                rule=self.id,
                severity=self.severity,
                path=path,
                line=taint.line,
                col=taint.col,
                message=taint.message(),
            ))
        return findings


class WallClockTaintRule(_TaintRuleBase):
    id = "REP120"
    title = "wall-clock value reaches a determinism sink"
    rationale = (
        "A seed, cache key, journal record, or emit payload derived from "
        "time.time()/datetime.now() — at any call depth — makes replays, "
        "cache hits, and resumed sweeps diverge between runs."
    )
    source_kind = KIND_WALLCLOCK


class UnseededRandomTaintRule(_TaintRuleBase):
    id = "REP121"
    title = "unseeded randomness reaches a determinism sink"
    rationale = (
        "Module-level random draws, os.urandom, and uuid4 are not "
        "derived from the run's master seed; feeding them into seeds or "
        "content addresses silently forks the replay universe."
    )
    source_kind = KIND_RNG


class EnvironTaintRule(_TaintRuleBase):
    id = "REP122"
    title = "os.environ value reaches a determinism sink"
    rationale = (
        "Environment variables differ across machines and CI runs; a "
        "seed or cache key derived from one makes results "
        "irreproducible without reconstructing the exact environment."
    )
    source_kind = KIND_ENV


class SetOrderTaintRule(_TaintRuleBase):
    id = "REP123"
    title = "set iteration order reaches a determinism sink"
    rationale = (
        "Set iteration order varies with PYTHONHASHSEED; a key, seed, "
        "or journal record derived from it differs between processes. "
        "sorted(...) the set before it reaches the sink."
    )
    source_kind = KIND_SETORDER


TAINT_RULES = (
    WallClockTaintRule,
    UnseededRandomTaintRule,
    EnvironTaintRule,
    SetOrderTaintRule,
)
