"""CI perf-regression gate.

Compares a freshly-measured benchmark snapshot against the most recent
committed ``BENCH_<date>.json`` and fails (exit 1) when either guarded
metric regressed by more than the threshold (default 25%):

* ``engine_ops_per_sec.run_loop`` — engine event throughput (higher is
  better);
* ``end_to_end_session_pair_s`` — wall-clock of the canonical Nexus 5
  session pair (lower is better);
* ``population.fleet_devices_per_sec`` — §3 fleet-engine simulation
  throughput in devices/second (higher is better);
* ``trace.replay_speedup_x`` — replay analytics over stored traces vs
  re-simulate-then-analyze on the canonical pair (higher is better).
  This one also has an **absolute** floor of 5×: the record/replay
  split exists to make repeated §5 analysis cheap, and a replay path
  that is less than 5× faster than re-simulation has lost its reason
  to exist regardless of what the baseline machine measured.

The generous threshold absorbs runner-to-runner hardware variance (the
committed baselines come from whatever machine cut the PR); the gate
exists to catch structural regressions — an accidentally-disabled fast
path shows up as 2×, not 25%.

Usage::

    python -m benchmarks.perf.check_regression --fresh /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Committed snapshot filename pattern: BENCH_<date>.json plus the
#: same-day suffix scheme of ``harness.bench_path``.
BENCH_PATTERN = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})(?:\.(\d+))?\.json$")

DEFAULT_THRESHOLD = 0.25

#: Absolute floor for trace.replay_speedup_x (see module docstring).
REPLAY_SPEEDUP_FLOOR = 5.0


def bench_sort_key(path: Path) -> Optional[Tuple[str, int]]:
    match = BENCH_PATTERN.match(path.name)
    if match is None:
        return None
    return (match.group(1), int(match.group(2) or 1))


def latest_bench(root: Path) -> Optional[Path]:
    """The most recent committed snapshot under ``root`` (by date, then
    same-day suffix), or None when the repo has no baseline yet."""
    candidates = [
        (key, path)
        for path in root.glob("BENCH_*.json")
        if (key := bench_sort_key(path)) is not None
    ]
    if not candidates:
        return None
    return max(candidates)[1]


def _end_to_end(results: Dict[str, Any]) -> Optional[float]:
    entry = results.get("end_to_end_session_pair_s")
    if isinstance(entry, dict):
        entry = entry.get("this_pr")
    return float(entry) if entry is not None else None


def _run_loop(results: Dict[str, Any]) -> Optional[float]:
    entry = results.get("engine_ops_per_sec", {}).get("run_loop")
    return float(entry) if entry is not None else None


def _population(results: Dict[str, Any]) -> Optional[float]:
    entry = results.get("population", {}).get("fleet_devices_per_sec")
    return float(entry) if entry is not None else None


def _replay_speedup(results: Dict[str, Any]) -> Optional[float]:
    entry = results.get("trace", {}).get("replay_speedup_x")
    return float(entry) if entry is not None else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf.check_regression")
    parser.add_argument("--fresh", required=True,
                        help="snapshot measured on this checkout")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline (default: latest committed "
                             "BENCH_*.json under --root)")
    parser.add_argument("--root", default=".",
                        help="directory holding committed BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args(argv)

    if args.baseline is not None:
        baseline_path: Optional[Path] = Path(args.baseline)
    else:
        baseline_path = latest_bench(Path(args.root))
    if baseline_path is None:
        print("perf gate: no committed BENCH_*.json baseline; skipping")
        return 0

    baseline = json.loads(baseline_path.read_text())["results"]
    fresh = json.loads(Path(args.fresh).read_text())["results"]
    threshold = args.threshold
    failures = []

    base_ops = _run_loop(baseline)
    fresh_ops = _run_loop(fresh)
    if base_ops is not None and fresh_ops is not None:
        floor = base_ops * (1.0 - threshold)
        verdict = "ok" if fresh_ops >= floor else "REGRESSED"
        print(f"run_loop: {fresh_ops:,.0f} ops/s vs baseline "
              f"{base_ops:,.0f} (floor {floor:,.0f}) -> {verdict}")
        if fresh_ops < floor:
            failures.append("run_loop")

    base_pair = _end_to_end(baseline)
    fresh_pair = _end_to_end(fresh)
    if base_pair is not None and fresh_pair is not None:
        ceiling = base_pair * (1.0 + threshold)
        verdict = "ok" if fresh_pair <= ceiling else "REGRESSED"
        print(f"end_to_end_session_pair_s: {fresh_pair:.3f}s vs baseline "
              f"{base_pair:.3f}s (ceiling {ceiling:.3f}s) -> {verdict}")
        if fresh_pair > ceiling:
            failures.append("end_to_end_session_pair_s")

    base_pop = _population(baseline)
    fresh_pop = _population(fresh)
    if base_pop is not None and fresh_pop is not None:
        floor = base_pop * (1.0 - threshold)
        verdict = "ok" if fresh_pop >= floor else "REGRESSED"
        print(f"fleet_devices_per_sec: {fresh_pop:,.0f} dev/s vs baseline "
              f"{base_pop:,.0f} (floor {floor:,.0f}) -> {verdict}")
        if fresh_pop < floor:
            failures.append("fleet_devices_per_sec")

    fresh_speedup = _replay_speedup(fresh)
    if fresh_speedup is not None:
        # Absolute 5x floor always applies; a baseline measurement can
        # only raise the bar (relative check), never lower it.
        base_speedup = _replay_speedup(baseline)
        floor = REPLAY_SPEEDUP_FLOOR
        if base_speedup is not None:
            floor = max(floor, base_speedup * (1.0 - threshold))
        verdict = "ok" if fresh_speedup >= floor else "REGRESSED"
        base_note = (
            f"baseline {base_speedup:.1f}x" if base_speedup is not None
            else "no baseline"
        )
        print(f"replay_speedup_x: {fresh_speedup:.1f}x vs {base_note} "
              f"(floor {floor:.1f}x) -> {verdict}")
        if fresh_speedup < floor:
            failures.append("replay_speedup_x")

    if failures:
        print(f"perf gate FAILED ({', '.join(failures)}) against "
              f"{baseline_path.name}", file=sys.stderr)
        return 1
    print(f"perf gate passed against {baseline_path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
