"""REP106 fixture: exact float comparisons in invariant code."""


def playable(crash_rate: float, drop_rate: float) -> bool:
    return crash_rate == 0.0 and drop_rate != -1.0
