"""Figure 9: average frame drops on the Nokia 1 (1 GB).

Paper: drop rate rises with memory pressure (1080p30: 19% Normal, 53%
Moderate, ~100% Critical), with resolution, and with frame rate; under
Critical the video is unplayable or the client crashes.
"""

from repro.experiments import video_experiments
from .conftest import print_header


def effective(cell):
    """Drop rate counting crash-truncated sessions as fully dropped."""
    rates = [r.effective_drop_rate for r in cell.results]
    return sum(rates) / len(rates)


def test_fig9_drops_nokia1(benchmark):
    grid = benchmark.pedantic(
        video_experiments.fig9_drops_nokia1,
        kwargs={"duration_s": 25.0, "repetitions": 3},
        rounds=1, iterations=1,
    )
    print_header("Figure 9 — frame drops on Nokia 1")
    for row in video_experiments.summarize_drop_grid(grid):
        print("  " + row)

    def drop(res, fps, pressure):
        return grid[(res, fps, pressure)].stats.mean_drop_rate

    def crash(res, fps, pressure):
        return grid[(res, fps, pressure)].stats.crash_rate

    # Pressure effect at every 30 FPS resolution >= 480p (drop or crash).
    for res in ("480p", "720p", "1080p"):
        worse = (
            effective(grid[(res, 30, "critical")])
            >= effective(grid[(res, 30, "normal")])
        )
        assert worse, res
    # Resolution effect under Moderate pressure.
    assert (
        effective(grid[("1080p", 30, "moderate")])
        > effective(grid[("240p", 30, "moderate")])
    )
    # Frame-rate effect: 60 FPS drops more than 30 FPS at 720p Moderate.
    assert (
        effective(grid[("720p", 60, "moderate")])
        >= effective(grid[("720p", 30, "moderate")])
    )
    # Critical is unplayable or crashes at high resolutions.
    assert crash("1080p", 30, "critical") == 1.0
