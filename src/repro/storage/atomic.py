"""Atomic publish discipline: the only way an artifact reaches disk.

Every persistence surface in the repo — the result cache, the sweep
journals, the trace store, the lint cache, the cohort exports, the
arena leaderboards — ultimately boils down to "make these bytes appear
at this path, all or nothing, and survive a crash".  Before this layer
each surface had its own partial answer (bare ``write_bytes`` in the
leaderboard, tmp+rename without fsync in the caches).  This module is
the single full answer:

1. stage the payload in a temporary file **in the destination
   directory** (same filesystem, so the final rename cannot copy);
2. ``fsync`` the staged file, so the payload is durable before it
   becomes visible;
3. ``os.replace`` it into place — atomic on POSIX, so a reader (or a
   crashed writer) can only ever observe the old artifact or the new
   one, never a mixture;
4. ``fsync`` the destination *directory*, so the rename itself survives
   an OS crash (a step every hand-rolled copy in the repo skipped).

The staged-write path is also where storage-level chaos lands: a
:class:`~repro.faults.injector.FaultPlan` fault armed at
``storage:<surface>`` (kinds ``torn``/``crash``/``bitrot``/``enospc``/
``readonly``) is claimed exactly once through the injector's ledger and
applied here, deterministically, so ``repro chaos`` can prove that
every surface recovers from torn writes, lost renames, flipped bits,
full disks, and read-only directories (see ``docs/robustness.md``).

Lint rule REP111 rejects bare ``open(.., "w")``/``write_bytes``/
``write_text`` publishes inside the persistence scopes so new surfaces
cannot quietly regress to the old discipline.
"""

from __future__ import annotations

import errno
import hashlib
import os
import tempfile
import zlib
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Callable, Optional, TextIO, Union

from ..faults.injector import InjectedCrash, claim_storage_fault

#: Suffix of staged (not yet published) files.  fsck treats a surviving
#: ``*.tmp`` file as an orphan: evidence of a writer that died between
#: staging and publish.
TMP_SUFFIX = ".tmp"

#: ``errno`` values that mean "this directory will never accept writes"
#: (as opposed to transient conditions like a full disk): callers
#: degrade to uncached operation instead of retrying.
READONLY_ERRNOS = frozenset({errno.EROFS, errno.EACCES, errno.EPERM})


@dataclass
class StorageReport:
    """What one store's durability layer observed (see docs/robustness.md).

    Every counter is a degradation or recovery event that must stay
    visible: the CLIs fold these into their ``fabric:`` summaries and
    ``repro fsck --json`` reports them per store.
    """

    #: Artifacts published through the atomic discipline.
    published: int = 0
    #: Reads whose checksum envelope verified.
    verified: int = 0
    #: Reads of pre-envelope artifacts (no sidecar to verify against).
    legacy_reads: int = 0
    #: Corrupt artifacts moved to quarantine (never deleted).
    quarantined: int = 0
    #: Publishes that failed (full disk, injected crash, ...) without
    #: corrupting anything — the artifact simply was not published.
    publish_errors: int = 0
    #: Times a store disabled itself after a read-only directory error.
    readonly_fallbacks: int = 0
    #: Orphaned staging files removed while republishing an artifact.
    stale_tmp_pruned: int = 0

    def summary(self) -> str:
        parts = [f"published {self.published}"]
        if self.verified:
            parts.append(f"verified {self.verified}")
        if self.legacy_reads:
            parts.append(f"legacy reads {self.legacy_reads}")
        if self.quarantined:
            parts.append(f"quarantined {self.quarantined}")
        if self.publish_errors:
            parts.append(f"publish errors {self.publish_errors}")
        if self.readonly_fallbacks:
            parts.append("read-only fallback")
        if self.stale_tmp_pruned:
            parts.append(f"stale tmp pruned {self.stale_tmp_pruned}")
        return ", ".join(parts)


def is_readonly_error(exc: OSError) -> bool:
    """True when ``exc`` means the directory will never accept writes."""
    return isinstance(exc, PermissionError) or exc.errno in READONLY_ERRNOS


def fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (makes a rename durable).

    Best-effort: some filesystems (and all of Windows) refuse to open a
    directory, in which case the rename is as durable as the platform
    allows and the publish proceeds.
    """
    with suppress(OSError):
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def _file_sha256(path: Path) -> str:
    hasher = hashlib.sha256()
    with path.open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(block)
    return hasher.hexdigest()


def _flip_byte(path: Path) -> None:
    """Deterministic bit-rot: XOR the artifact's middle byte in place."""
    size = path.stat().st_size
    if size == 0:
        return
    offset = size // 2
    with path.open("r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
        fh.flush()
        os.fsync(fh.fileno())


def prune_stale_tmp(
    path: Path, report: Optional[StorageReport] = None
) -> int:
    """Remove leftover staging files of earlier publishes of ``path``.

    A writer that died between staging and publish leaves
    ``<name><random>.tmp`` behind; the next successful publish of the
    same artifact sweeps them so a recovered store needs no manual
    cleanup.  Returns the number pruned.
    """
    pruned = 0
    with suppress(OSError):
        for stale in path.parent.glob(f"{path.name}*{TMP_SUFFIX}"):
            with suppress(OSError):
                stale.unlink()
                pruned += 1
    if report is not None:
        report.stale_tmp_pruned += pruned
    return pruned


def publish_via(
    path: Union[str, Path],
    fill: Callable[[IO[bytes]], None],
    *,
    surface: Optional[str] = None,
    do_fsync: bool = True,
    report: Optional[StorageReport] = None,
) -> str:
    """Publish whatever ``fill`` writes into a staged handle; returns
    the payload's SHA-256 hex digest.

    This is the streaming entry point (npz and gzip writers need a real
    seekable file, so hashing happens by re-reading the staged file —
    one warm sequential read).  On any error the staged file is removed:
    a failed publish leaves **nothing** behind, not even on ENOSPC.

    ``surface`` names the storage fault point (``storage:<surface>``)
    for the chaos harness; ``None`` opts out of fault injection (e.g.
    envelope sidecars, which must stay trustworthy while their artifact
    is being faulted).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=TMP_SUFFIX
    )
    tmp: Optional[Path] = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fill(fh)
            fh.flush()
            if do_fsync:
                os.fsync(fh.fileno())
        assert tmp is not None
        digest = _file_sha256(tmp)
        fault = claim_storage_fault(surface)
        if fault == "enospc":
            raise OSError(
                errno.ENOSPC, "injected ENOSPC during publish", str(path)
            )
        if fault == "readonly":
            raise PermissionError(
                errno.EROFS, "injected read-only directory", str(path)
            )
        if fault == "crash":
            # A process death between staging and os.replace: the tmp
            # file survives as an orphan, the artifact never appears.
            tmp = None
            raise InjectedCrash(
                f"injected crash before publish of {path}"
            )
        if fault == "torn":
            # A torn write: the rename lands but the payload's tail was
            # lost.  The envelope digest (computed above, over the full
            # payload) is what lets readers catch this.
            size = Path(tmp_name).stat().st_size
            with open(tmp_name, "r+b") as torn:
                torn.truncate(max(1, size // 2))
                torn.flush()
                os.fsync(torn.fileno())
        os.replace(tmp_name, path)
        tmp = None
        if do_fsync:
            fsync_dir(path.parent)
        if fault == "bitrot":
            _flip_byte(path)
        prune_stale_tmp(path, report)
        if report is not None:
            report.published += 1
        return digest
    finally:
        if tmp is not None:
            with suppress(OSError):
                os.unlink(tmp)


def publish_bytes(
    path: Union[str, Path],
    data: bytes,
    *,
    surface: Optional[str] = None,
    do_fsync: bool = True,
    report: Optional[StorageReport] = None,
) -> str:
    """Atomically publish ``data`` at ``path``; returns its SHA-256."""
    return publish_via(
        path, lambda fh: fh.write(data) and None,  # type: ignore[func-returns-value]
        surface=surface, do_fsync=do_fsync, report=report,
    )


# ----------------------------------------------------------------------
# Journal streams (append-only surfaces)
# ----------------------------------------------------------------------

def open_journal(
    path: Union[str, Path], *, fresh: bool
) -> TextIO:
    """Open an append-only journal stream through the durability layer.

    Journals are the one surface that cannot use publish-by-replace
    (they grow a record at a time), so their discipline is different:
    per-record CRCs catch torn tails, and the caller fsyncs the header
    and the close via :func:`fsync_handle`.  ``fresh=True`` truncates;
    ``fresh=False`` appends.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "w" if fresh else "a"
    return path.open(mode, encoding="utf-8")


def record_crc(payload: str) -> str:
    """CRC-32 (hex) of one journal record's payload.

    Cheap enough to compute per record on the write path, strong enough
    to reject a torn tail: a record whose stored CRC does not match was
    cut mid-write and resume must skip exactly that record.
    """
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def fsync_handle(fh: TextIO) -> None:
    """Flush and fsync an open journal stream (durable up to here).

    Best-effort on exotic handles without a real descriptor (tests pass
    StringIO); a handle that cannot fsync is as durable as flush gets.
    """
    fh.flush()
    with suppress(OSError, ValueError, AttributeError):
        os.fsync(fh.fileno())
