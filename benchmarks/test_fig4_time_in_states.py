"""Figure 4: fraction of time spent in memory-pressure states.

Paper: 27% of devices spent >=2% of time in Moderate; 10% spent >4% in
Critical; two devices spent >40% of time in Critical.
"""

from repro.experiments import study_experiments
from .conftest import print_header


def test_fig4_time_in_states(benchmark, study_devices):
    rows = benchmark.pedantic(
        study_experiments.fig4_time_in_states, args=(study_devices,),
        rounds=1, iterations=1,
    )
    print_header("Figure 4 — % time in pressure states vs RAM")
    worst = sorted(rows, key=lambda r: r["high_total"], reverse=True)[:8]
    for row in worst:
        print(
            f"  {row['device_id']} {row['ram_gb']:.0f}GB  "
            f"moderate {row['moderate'] * 100:5.1f}%  "
            f"low {row['low'] * 100:5.1f}%  "
            f"critical {row['critical'] * 100:5.1f}%"
        )
    n = len(rows)
    frac_mod2 = sum(1 for r in rows if r["moderate"] >= 0.02) / n
    frac_crit4 = sum(1 for r in rows if r["critical"] > 0.04) / n
    print(f"  devices with >=2% Moderate time: {frac_mod2:.2f}  (paper: 0.27)")
    print(f"  devices with >4% Critical time: {frac_crit4:.2f}  (paper: 0.10)")

    assert 0.1 <= frac_mod2 <= 0.5
    assert 0.02 <= frac_crit4 <= 0.3
    for row in rows:
        total = row["normal"] + row["moderate"] + row["low"] + row["critical"]
        assert abs(total - 1.0) < 1e-6
