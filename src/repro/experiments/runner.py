"""Experiment repetition machinery.

The paper repeats each controlled experiment five times and reports
means with 95% confidence intervals (§4.1).  :func:`run_cell` executes
one experimental cell — (device, resolution, fps, pressure, client) —
with per-repetition seeds and aggregates the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.analysis import CellStats
from ..core.session import StreamingSession
from ..video.encoding import VideoAsset, default_video
from ..video.player import SessionResult

#: The paper's repetition count.
DEFAULT_REPETITIONS = 5


@dataclass
class CellResult:
    """One experimental cell: its configuration, runs, and aggregate."""

    device: str
    resolution: str
    fps: int
    pressure: str
    client: str
    results: List[SessionResult]

    @property
    def stats(self) -> CellStats:
        return CellStats.from_results(self.results)

    def label(self) -> str:
        return f"{self.device} {self.resolution}@{self.fps} {self.pressure}"


def run_cell(
    device: str = "nokia1",
    resolution: str = "480p",
    fps: int = 30,
    pressure: str = "normal",
    client: Optional[str] = None,
    duration_s: float = 30.0,
    repetitions: int = DEFAULT_REPETITIONS,
    base_seed: int = 100,
    asset: Optional[VideoAsset] = None,
    organic_apps: int = 0,
    abr=None,
) -> CellResult:
    """Run one cell ``repetitions`` times with distinct seeds."""
    results = []
    for rep in range(repetitions):
        session = StreamingSession(
            device=device,
            asset=asset or default_video(duration_s=duration_s),
            resolution=resolution,
            frame_rate=fps,
            pressure=pressure,
            client=client,
            duration_s=duration_s,
            seed=base_seed + rep * 7919,
            organic_apps=organic_apps,
            abr=abr() if callable(abr) else abr,
        )
        results.append(session.run())
    return CellResult(
        device=device,
        resolution=resolution,
        fps=fps,
        pressure=pressure,
        client=client or "firefox",
        results=results,
    )
