"""Figure 2: CDF of median RAM utilization across devices.

Paper: 80% of devices had a median utilization of at least 60%; 20%
exceeded 75%.
"""

import numpy as np

from repro.experiments import study_experiments
from .conftest import print_header


def test_fig2_ram_cdf(benchmark, study_devices):
    cdf = benchmark.pedantic(
        study_experiments.fig2_utilization_cdf, args=(study_devices,),
        rounds=1, iterations=1,
    )
    print_header("Figure 2 — CDF of median RAM utilization")
    values = np.array([v for v, _ in cdf])
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        print(f"  p{int(q * 100):02d} median-util = {np.quantile(values, q):.2f}")
    ge60 = float((values >= 0.60).mean())
    gt75 = float((values > 0.75).mean())
    print(f"  fraction >= 60%: {ge60:.2f}   (paper: 0.80)")
    print(f"  fraction >  75%: {gt75:.2f}   (paper: 0.20)")

    assert cdf == sorted(cdf)
    assert ge60 > 0.6
    assert 0.05 < gt75 < 0.5
