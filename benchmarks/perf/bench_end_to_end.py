"""End-to-end session benchmark: the canonical Nexus 5 pair.

The macrobenchmark every PR's fast-forward work is judged against: two
full 10-second 720p30 streaming sessions (moderate and critical
pressure, seed 7) run back to back.  The pair covers both regimes the
simulator spends its time in — a mostly-idle pipeline with periodic
duty/render work, and a reclaim-heavy thrash loop — so a speedup here
reflects real session wall-clock, not a microbench artifact.

Run directly (``python -m benchmarks.perf.bench_end_to_end``) or
through ``benchmarks.perf.run`` / ``repro bench``, which record the
number to a ``BENCH_<date>.json``.
"""

from __future__ import annotations

from typing import Dict

from repro.core.session import StreamingSession

from .harness import time_once

#: The canonical cell pair (device, resolution, fps, duration, seed).
PAIR_PRESSURES = ("moderate", "critical")
PAIR_KWARGS = dict(
    device="nexus5", resolution="720p", frame_rate=30,
    duration_s=10.0, seed=7,
)


def session_pair() -> None:
    """Run the canonical moderate+critical session pair."""
    for pressure in PAIR_PRESSURES:
        StreamingSession(pressure=pressure, **PAIR_KWARGS).run()


def elided_events_per_pair() -> Dict[str, int]:
    """Interior quantum boundaries retired analytically (no event
    scheduled or fired) per session of the canonical pair."""
    counts = {}
    for pressure in PAIR_PRESSURES:
        session = StreamingSession(pressure=pressure, **PAIR_KWARGS)
        session.run()
        counts[pressure] = session.device.scheduler.elided_slices
    return counts


def run(quick: bool = False) -> Dict[str, float]:
    """Best-of-N wall-clock seconds for the canonical session pair."""
    repeats = 2 if quick else 5
    session_pair()  # warm-up: imports, specialization, allocator
    best = min(time_once(session_pair) for _ in range(repeats))
    return {"end_to_end_session_pair_s": round(best, 3)}


if __name__ == "__main__":
    print(f"end_to_end_session_pair_s {run()['end_to_end_session_pair_s']:.3f}")
    for pressure, count in elided_events_per_pair().items():
        print(f"elided_slices[{pressure}] {count}")
