"""Tests for ``Simulator.off`` and ``TraceRecorder.detach``: the
record side of the record/replay split must stop cleanly and cost the
simulation nothing afterwards."""

from repro.sched import Scheduler, make_cores
from repro.sim import Simulator, millis
from repro.trace.recorder import TraceRecorder


def make_traced():
    sim = Simulator(seed=3)
    sched = Scheduler(sim, make_cores([1.0]))
    recorder = TraceRecorder(sim)
    return sim, sched, recorder


# ----------------------------------------------------------------------
# Simulator.off
# ----------------------------------------------------------------------

def test_off_removes_callback():
    sim = Simulator(seed=1)
    hits = []
    cb = lambda **kw: hits.append(kw)  # noqa: E731
    sim.on("topic", cb)
    sim.emit("topic", value=1)
    sim.off("topic", cb)
    sim.emit("topic", value=2)
    assert len(hits) == 1


def test_off_drops_tracing_flag_when_last_hook_leaves():
    sim = Simulator(seed=1)
    cb_a = lambda **kw: None  # noqa: E731
    cb_b = lambda **kw: None  # noqa: E731
    sim.on("a", cb_a)
    sim.on("b", cb_b)
    sim.off("a", cb_a)
    assert sim.tracing  # one subscriber left
    sim.off("b", cb_b)
    assert not sim.tracing  # emit() fast path restored


def test_off_is_idempotent():
    sim = Simulator(seed=1)
    cb = lambda **kw: None  # noqa: E731
    sim.on("topic", cb)
    sim.off("topic", cb)
    sim.off("topic", cb)  # absent callback: no-op, no raise
    sim.off("never-registered", cb)
    assert not sim.tracing


def test_off_leaves_other_subscribers():
    sim = Simulator(seed=1)
    hits_a, hits_b = [], []
    cb_a = lambda **kw: hits_a.append(kw)  # noqa: E731
    cb_b = lambda **kw: hits_b.append(kw)  # noqa: E731
    sim.on("topic", cb_a)
    sim.on("topic", cb_b)
    sim.off("topic", cb_a)
    sim.emit("topic", value=1)
    assert hits_a == [] and len(hits_b) == 1


# ----------------------------------------------------------------------
# TraceRecorder.detach
# ----------------------------------------------------------------------

def test_detach_stops_recording():
    sim, sched, recorder = make_traced()
    thread = sched.spawn("worker")
    thread.post(millis(1))
    sim.run(until=millis(5))
    recorder.detach()
    events_at_detach = dict(
        (name, list(ev)) for name, ev in recorder.transitions.items()
    )
    thread.post(millis(1))
    sim.run(until=millis(10))
    assert {
        name: list(ev) for name, ev in recorder.transitions.items()
    } == events_at_detach


def test_detach_freezes_end_time():
    sim, sched, recorder = make_traced()
    sched.spawn("worker").post(millis(1))
    sim.run(until=millis(5))
    recorder.detach()
    frozen = recorder.end_time
    assert frozen == sim.now
    sim.run(until=millis(10))
    assert recorder.end_time == frozen
    assert recorder.detached


def test_detach_is_idempotent():
    sim, sched, recorder = make_traced()
    sim.run(until=millis(2))
    recorder.detach()
    first = recorder.end_time
    sim.run(until=millis(4))
    recorder.detach()
    assert recorder.end_time == first


def test_detach_restores_emit_fast_path():
    sim, _sched, recorder = make_traced()
    assert sim.tracing
    recorder.detach()
    assert not sim.tracing


def test_detach_stops_sampler_and_blocks_restart():
    sim, _sched, recorder = make_traced()
    ticks = []
    recorder.track_counter("x", lambda: float(len(ticks)) or 0.0)
    recorder.start_sampling(period=millis(1))
    sim.run(until=millis(3))
    samples_before = len(recorder.counters["x"])
    assert samples_before > 0
    recorder.detach()
    recorder.start_sampling(period=millis(1))  # refused after detach
    sim.run(until=millis(6))
    assert len(recorder.counters["x"]) == samples_before


def test_two_recorders_detach_independently():
    sim = Simulator(seed=3)
    sched = Scheduler(sim, make_cores([1.0]))
    first = TraceRecorder(sim)
    second = TraceRecorder(sim)
    thread = sched.spawn("worker")
    thread.post(millis(1))
    sim.run(until=millis(2))
    first.detach()
    thread.post(millis(1))
    sim.run(until=millis(4))
    assert sim.tracing  # second recorder still attached
    assert len(second.transitions["worker"]) > len(
        first.transitions["worker"]
    )
