"""REP222 bad fixture: the monitor reads 'vsync_missed', which no emit
site of the topic provides — the .get() always takes the default."""


class Renderer:
    def __init__(self, sim):
        self.sim = sim

    def present(self) -> None:
        if self.sim.tracing:
            self.sim.emit("render.presented", frame=1, late=False)


class RenderMonitor:
    def __init__(self, sim):
        self.vsync = None
        self.late = None
        sim.on("render.presented", self._on_presented)

    def _on_presented(self, time, frame, **payload):
        self.vsync = payload.get("vsync_missed")
        self.late = payload.get("late")
