"""Unit tests for the video origin server."""

import pytest

from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.video.dash import Manifest
from repro.video.encoding import GENRES, VideoAsset
from repro.video.network import Link
from repro.video.server import VideoServer


def make_server(bandwidth_mbps=100.0):
    sim = Simulator(seed=3)
    asset = VideoAsset("t", GENRES["news"], 12.0,
                       resolutions=("480p",), frame_rates=(30,))
    manifest = Manifest(asset, RandomStreams(3))
    server = VideoServer(sim, manifest, Link(bandwidth_mbps))
    return sim, manifest, server


def test_segment_delivered_after_transfer_time():
    sim, manifest, server = make_server()
    rep = manifest.representation("480p", 30)
    arrived = []
    server.request_segment(rep, 0, lambda seg: arrived.append((sim.now, seg)))
    sim.run()
    assert len(arrived) == 1
    time, segment = arrived[0]
    assert segment.index == 0
    assert time > 0


def test_slower_link_takes_longer():
    def fetch_time(mbps):
        sim, manifest, server = make_server(mbps)
        rep = manifest.representation("480p", 30)
        done = []
        server.request_segment(rep, 0, lambda seg: done.append(sim.now))
        sim.run()
        return done[0]

    assert fetch_time(2.0) > fetch_time(100.0) * 5


def test_out_of_range_segment_rejected():
    sim, manifest, server = make_server()
    rep = manifest.representation("480p", 30)
    with pytest.raises(IndexError):
        server.request_segment(rep, 999, lambda seg: None)
    with pytest.raises(IndexError):
        server.request_segment(rep, -1, lambda seg: None)


def test_counters_accumulate():
    sim, manifest, server = make_server()
    rep = manifest.representation("480p", 30)
    server.request_segment(rep, 0, lambda seg: None)
    server.request_segment(rep, 1, lambda seg: None)
    sim.run()
    assert server.requests_served == 2
    assert server.bytes_served == (
        rep.segments[0].size_bytes + rep.segments[1].size_bytes
    )
