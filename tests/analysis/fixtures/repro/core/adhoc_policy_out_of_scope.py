"""REP110 is scoped to experiments/: the same calls are fine in core."""

from repro.core.abr import MemoryAwareAbr


def controller_for_unit_test():
    # core (and tests, arena, cli) may construct controllers directly;
    # only experiments/ must route through the registry.
    return MemoryAwareAbr()
