"""Tests for device profiles and the booted Device."""

import pytest

from repro.device import Device, generic_profile, nexus5, nexus6p, nokia1
from repro.device.profiles import PROFILES, nokia1_profile
from repro.kernel import MemoryPressureLevel, mb_to_pages
from repro.sched.cpu import make_cores
from repro.sim import seconds


def test_paper_device_specs():
    n1 = nokia1_profile()
    assert n1.ram_mb == 1024
    assert n1.n_cores == 4
    assert n1.core_freqs_ghz == (1.1,) * 4
    assert n1.pressure_thresholds.moderate == 6
    assert n1.pressure_thresholds.critical == 3

    n6p = nexus6p(seed=0).profile
    assert n6p.ram_mb == 3072
    assert n6p.n_cores == 8
    assert set(n6p.core_clusters) == {"little", "big"}


def test_decode_capability_ordering():
    assert (
        nokia1_profile().decode_cost_multiplier
        > nexus5(seed=0).profile.decode_cost_multiplier
        > nexus6p(seed=0).profile.decode_cost_multiplier
    )


def test_boot_is_idempotent():
    device = nokia1(seed=1)
    processes_before = len(device.memory.table.processes)
    device.boot()
    assert len(device.memory.table.processes) == processes_before


def test_boot_populates_lru():
    device = nexus5(seed=2)
    assert device.memory.table.cached_count == device.profile.cached_app_count
    assert device.pressure_level is MemoryPressureLevel.NORMAL
    assert device.free_mb > 400
    device.memory.check_consistency()


def test_generic_profile_scales():
    small = generic_profile("s", ram_mb=512)
    large = generic_profile("l", ram_mb=4096)
    assert large.cached_app_count >= small.cached_app_count
    assert large.kernel_reserved_mb > small.kernel_reserved_mb
    Device(small, seed=3).boot().memory.check_consistency()


def test_registry():
    assert set(PROFILES) == {"nokia1", "nexus5", "nexus6p"}


def test_respawn_restores_cached_population():
    device = nokia1(seed=4)
    victim = device.cached_apps[0]
    device.memory.kill_process(victim, "lmkd")
    count_after_kill = device.memory.table.cached_count
    device.run(until=seconds(30))
    assert device.memory.table.cached_count > count_after_kill
    assert device.respawn_count >= 1


def test_no_respawn_when_disabled():
    from repro.device.profiles import nokia1_profile

    device = Device(nokia1_profile(), seed=5, auto_respawn=False).boot()
    device.memory.kill_process(device.cached_apps[0], "lmkd")
    device.run(until=seconds(30))
    assert device.respawn_count == 0


def test_make_cores_validation():
    with pytest.raises(ValueError):
        make_cores([1.0, 2.0], clusters=["a"])
