"""Tests for the experiment repetition machinery."""

from repro.experiments.runner import CellResult, run_cell


def test_run_cell_repetitions_and_seeds():
    cell = run_cell(
        device="nexus5", resolution="240p", fps=30,
        pressure="normal", duration_s=6.0, repetitions=2,
    )
    assert isinstance(cell, CellResult)
    assert len(cell.results) == 2
    assert cell.stats.n == 2
    assert cell.client == "firefox"
    assert "240p@30" in cell.label()


def test_normal_cell_is_clean_on_big_device():
    cell = run_cell(
        device="nexus6p", resolution="480p", fps=30,
        pressure="normal", duration_s=6.0, repetitions=2,
    )
    assert cell.stats.mean_drop_rate < 0.02
    assert cell.stats.crash_rate == 0.0


def test_client_override():
    cell = run_cell(
        device="nexus5", resolution="240p", fps=30,
        pressure="normal", duration_s=5.0, repetitions=1, client="exoplayer",
    )
    assert cell.results[0].client_name == "exoplayer"
