"""Video encodings: resolutions, frame rates, bitrate ladder, genres.

Bitrates follow YouTube's recommended upload encode settings, the
ladder the paper's videos were encoded with (§4.1).  Genres carry a
*complexity* multiplier applied to decode cost and segment sizes: the
five paper videos (travel, sports, gaming, news, nature) differ mostly
in motion complexity, which is why Figure 12 shows the same qualitative
trends with modestly different magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Resolution:
    """A video resolution rung."""

    name: str
    width: int
    height: int

    @property
    def pixels(self) -> int:
        return self.width * self.height


RESOLUTIONS: Dict[str, Resolution] = {
    "240p": Resolution("240p", 426, 240),
    "360p": Resolution("360p", 640, 360),
    "480p": Resolution("480p", 854, 480),
    "720p": Resolution("720p", 1280, 720),
    "1080p": Resolution("1080p", 1920, 1080),
    "1440p": Resolution("1440p", 2560, 1440),
}

#: Ascending resolution order used by ladders and sweeps.
RESOLUTION_ORDER: Tuple[str, ...] = (
    "240p", "360p", "480p", "720p", "1080p", "1440p"
)

#: YouTube-recommended bitrates in kbps: {resolution: {fps: kbps}}.
#: 24/30 fps share a rung; 48/60 fps share the high-frame-rate rung.
BITRATE_LADDER_KBPS: Dict[str, Dict[int, int]] = {
    "240p": {24: 500, 30: 500, 48: 750, 60: 750},
    "360p": {24: 1000, 30: 1000, 48: 1500, 60: 1500},
    "480p": {24: 2500, 30: 2500, 48: 4000, 60: 4000},
    "720p": {24: 5000, 30: 5000, 48: 7500, 60: 7500},
    "1080p": {24: 8000, 30: 8000, 48: 12000, 60: 12000},
    "1440p": {24: 16000, 30: 16000, 48: 24000, 60: 24000},
}

SUPPORTED_FRAME_RATES: Tuple[int, ...] = (24, 30, 48, 60)


def bitrate_kbps(resolution: str, fps: int) -> int:
    """Ladder bitrate for a (resolution, fps) encoding."""
    if resolution not in BITRATE_LADDER_KBPS:
        raise KeyError(f"unknown resolution {resolution!r}")
    rungs = BITRATE_LADDER_KBPS[resolution]
    if fps not in rungs:
        raise KeyError(f"unsupported frame rate {fps} for {resolution}")
    return rungs[fps]


@dataclass(frozen=True)
class VideoGenre:
    """Content class with a decode/size complexity multiplier."""

    name: str
    complexity: float


GENRES: Dict[str, VideoGenre] = {
    "travel": VideoGenre("travel", 1.00),   # Dubai Flow Motion
    "sports": VideoGenre("sports", 1.15),   # tennis, court-level 4K 60
    "gaming": VideoGenre("gaming", 1.10),   # Dota 2 finals
    "news": VideoGenre("news", 0.75),       # talking heads
    "nature": VideoGenre("nature", 1.05),   # Bali 8K HDR
}


@dataclass(frozen=True)
class VideoAsset:
    """One source video with its available encodings."""

    title: str
    genre: VideoGenre
    duration_s: float
    resolutions: Tuple[str, ...] = RESOLUTION_ORDER
    frame_rates: Tuple[int, ...] = (30, 60)

    def encodings(self) -> List[Tuple[str, int, int]]:
        """All (resolution, fps, kbps) combinations for this asset."""
        return [
            (res, fps, bitrate_kbps(res, fps))
            for res in self.resolutions
            for fps in self.frame_rates
        ]


def paper_catalog(duration_s: float = 60.0) -> Dict[str, VideoAsset]:
    """The five evaluation videos from §4.3 (one per genre)."""
    return {
        "travel": VideoAsset("Dubai Flow Motion in 4K", GENRES["travel"], duration_s),
        "sports": VideoAsset("Djokovic vs Shapovalov 4K 60FPS", GENRES["sports"], duration_s),
        "gaming": VideoAsset("NIGMA vs OG TI Champions", GENRES["gaming"], duration_s),
        "news": VideoAsset("Taliban fighter interview", GENRES["news"], duration_s),
        "nature": VideoAsset("Bali in 8K ULTRA HD HDR", GENRES["nature"], duration_s),
    }


def default_video(duration_s: float = 60.0) -> VideoAsset:
    """The single-video experiments' asset (the Dubai travel video)."""
    return paper_catalog(duration_s)["travel"]
