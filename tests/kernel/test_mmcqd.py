"""Unit tests for the mmcqd I/O queue daemon."""

from repro.device.storage import StorageDevice, StorageProfile
from repro.kernel.mmcqd import Mmcqd
from repro.sched import SchedClass, Scheduler, ThreadState, make_cores
from repro.sim import Simulator, millis


def make_mmcqd(n_cores=1):
    sim = Simulator(seed=2)
    sched = Scheduler(sim, make_cores([1.0] * n_cores))
    storage = StorageDevice(StorageProfile(jitter_sigma=0.0), sim.random)
    return sim, sched, Mmcqd(sim, sched, storage)


def test_read_completes_with_callback():
    sim, sched, mmcqd = make_mmcqd()
    done = []
    mmcqd.submit_read(8, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert done[0] > 0
    assert mmcqd.completed_requests == 1


def test_requests_serviced_fifo():
    sim, sched, mmcqd = make_mmcqd()
    order = []
    mmcqd.submit_read(4, on_complete=lambda: order.append("a"))
    mmcqd.submit_write(4, on_complete=lambda: order.append("b"))
    mmcqd.submit_read(4, on_complete=lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_mmcqd_preempts_foreground_thread():
    sim, sched, mmcqd = make_mmcqd()
    fg = sched.spawn("video", SchedClass.FOREGROUND)
    fg.post(millis(50) * 1.0)
    sim.schedule(millis(5), mmcqd.submit_read, 64)
    sim.run()
    assert fg.preemptions_suffered >= 1
    assert fg.time_in(ThreadState.RUNNABLE_PREEMPTED) > 0
    assert mmcqd.thread.time_in(ThreadState.RUNNING) > 0


def test_larger_requests_cost_more_cpu():
    sim1, _, mmcqd1 = make_mmcqd()
    mmcqd1.submit_read(1)
    sim1.run()
    small = mmcqd1.thread.time_in(ThreadState.RUNNING)

    sim2, _, mmcqd2 = make_mmcqd()
    mmcqd2.submit_read(256)
    sim2.run()
    big = mmcqd2.thread.time_in(ThreadState.RUNNING)
    assert big > small


def test_queue_depth_reporting():
    sim, sched, mmcqd = make_mmcqd()
    mmcqd.submit_read(4)
    mmcqd.submit_read(4)
    assert mmcqd.queue_depth == 2
    sim.run()
    assert mmcqd.queue_depth == 0
